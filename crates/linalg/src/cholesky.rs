//! Dense LDLᵀ factorisation for the bottom of the preconditioner chain.
//!
//! Fact 6.4 of the paper: once the chain has reduced the problem to a
//! graph with ~m^{1/3} vertices, a dense factorisation is computed once
//! (O(n³) work, O(n) depth in theory) and each subsequent bottom-level
//! solve is two triangular solves (O(n²) work, O(log n) depth).
//!
//! Laplacians are only positive *semi*-definite: the all-ones vector of
//! every connected component is in the null space. The factorisation
//! handles this by treating pivots below a relative tolerance as zero,
//! which yields a particular solution whenever the right-hand side lies in
//! the range (callers project it there).

use crate::block::MultiVector;
use crate::csr::CsrMatrix;
use crate::operator::LinearOperator;

/// A dense LDLᵀ factorisation of a symmetric positive semi-definite matrix.
#[derive(Debug, Clone)]
pub struct DenseLdl {
    n: usize,
    /// Unit lower-triangular factor, row-major (only the strict lower part
    /// is meaningful).
    l: Vec<f64>,
    /// Diagonal factor; zero entries mark (numerically) null directions.
    d: Vec<f64>,
}

impl DenseLdl {
    /// Factors a dense symmetric PSD matrix given as row-major rows.
    ///
    /// `rel_tol` controls when a pivot is treated as zero (relative to the
    /// largest diagonal magnitude encountered).
    pub fn from_dense(a: &[Vec<f64>], rel_tol: f64) -> Self {
        let n = a.len();
        for row in a {
            assert_eq!(row.len(), n, "matrix must be square");
        }
        let max_diag = (0..n)
            .map(|i| a[i][i].abs())
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let tol = rel_tol * max_diag;
        let mut l = vec![0.0f64; n * n];
        let mut d = vec![0.0f64; n];
        for j in 0..n {
            // d_j = a_jj - sum_k l_jk^2 d_k
            let mut dj = a[j][j];
            for k in 0..j {
                dj -= l[j * n + k] * l[j * n + k] * d[k];
            }
            if dj.abs() <= tol {
                d[j] = 0.0;
                // Null direction: leave column j of L as zeros below the
                // diagonal (the corresponding solution coordinate is free
                // and will be set to zero).
                l[j * n + j] = 1.0;
                continue;
            }
            d[j] = dj;
            l[j * n + j] = 1.0;
            for i in (j + 1)..n {
                let mut v = a[i][j];
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k] * d[k];
                }
                l[i * n + j] = v / dj;
            }
        }
        DenseLdl { n, l, d }
    }

    /// Factors a sparse symmetric PSD matrix by densifying it (intended for
    /// the small bottom-level systems only).
    pub fn from_csr(a: &CsrMatrix, rel_tol: f64) -> Self {
        Self::from_dense(&a.to_dense(), rel_tol)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of zero pivots (dimension of the detected null space).
    pub fn null_dim(&self) -> usize {
        self.d.iter().filter(|&&d| d == 0.0).count()
    }

    /// Solves `A x = b` (in the least-squares / particular-solution sense
    /// when `A` is singular and `b` is in the range).
    // Triangular solves index `l` with row/column strides; explicit indices
    // are clearer than iterator chains here.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Forward solve L z = b.
        let mut z = b.to_vec();
        for i in 0..n {
            let mut zi = z[i];
            for k in 0..i {
                zi -= self.l[i * n + k] * z[k];
            }
            z[i] = zi;
        }
        // Diagonal solve.
        for i in 0..n {
            if self.d[i] == 0.0 {
                z[i] = 0.0;
            } else {
                z[i] /= self.d[i];
            }
        }
        // Backward solve Lᵀ x = z, in scatter form: once x[k] is final,
        // its updates to every earlier coordinate walk *row* k of `L`
        // contiguously (the gather form walks a column — one cache line
        // per entry on the row-major factor). [`solve_block`](Self::solve_block)
        // uses the same update order, which keeps the two bitwise
        // consistent per column.
        let mut x = z;
        for k in (0..n).rev() {
            let xk = x[k];
            let row = &self.l[k * n..k * n + k];
            for (xi, &lki) in x[..k].iter_mut().zip(row) {
                *xi -= lki * xk;
            }
        }
        x
    }

    /// Solves `A X = B` for a block of `k` right-hand sides with **one**
    /// stream of the `n²` factor per block: the triangular loops run rows
    /// outermost and columns innermost, so each `L` entry is loaded once
    /// and reused `k` times (the dense factor is the largest object the
    /// bottom of the preconditioner chain streams — per-RHS traffic drops
    /// by the block width). Internally the block is transposed to
    /// row-major and the kernel is monomorphised over a handful of fixed
    /// widths (padding with zero columns up to the next one), so the
    /// per-entry update is a register-resident K-wide fused-multiply-add
    /// with no per-element slice arithmetic. Per column the operation
    /// order matches [`solve`](Self::solve) exactly, so each column is
    /// bitwise identical to a single solve of that column.
    pub fn solve_block(&self, b: &MultiVector) -> MultiVector {
        assert_eq!(b.nrows(), self.n);
        let n = self.n;
        let k = b.ncols();
        if k == 1 {
            // The width-1 block is the single solve (same code would run,
            // minus the block plumbing).
            return MultiVector::from_columns(&[self.solve(b.col(0))]);
        }
        if k > 32 {
            // Wider than the widest monomorphised kernel: split.
            let first: Vec<usize> = (0..32).collect();
            let rest: Vec<usize> = (32..k).collect();
            let a = self.solve_block(&b.select_columns(&first));
            let z = self.solve_block(&b.select_columns(&rest));
            let mut cols: Vec<Vec<f64>> = a.into_columns();
            cols.extend(z.into_columns());
            return MultiVector::from_columns(&cols);
        }
        // Transpose to row-major, solve, transpose back.
        let mut br = vec![0.0f64; n * k];
        for j in 0..k {
            for (i, &v) in b.col(j).iter().enumerate() {
                br[i * k + j] = v;
            }
        }
        let xr = self.solve_rowmajor(&br, k);
        let mut out = MultiVector::zeros(n, k);
        for j in 0..k {
            let col = out.col_mut(j);
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = xr[i * k + j];
            }
        }
        out
    }

    /// Solves `A X = B` for `k` right-hand sides given **row-major**
    /// (`b[i·k + j]`), returning the solution in the same layout — the
    /// entry point the solver chain's row-major W-cycle uses, so the
    /// block needs no transposes at the bottom boundary. Pads to the next
    /// monomorphised width internally; `k = 1` takes the single-vector
    /// path. Bitwise identical per column to [`solve`](Self::solve).
    pub fn solve_rowmajor(&self, b: &[f64], k: usize) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n * k);
        if k == 1 {
            return self.solve(b);
        }
        assert!(k <= 32, "row-major bottom solves are capped at width 32");
        let kp = k.next_power_of_two().max(2);
        let mut zr = vec![0.0f64; n * kp];
        if kp == k {
            zr.copy_from_slice(b);
        } else {
            for (dst, src) in zr.chunks_exact_mut(kp).zip(b.chunks_exact(k)) {
                dst[..k].copy_from_slice(src);
            }
        }
        match kp {
            2 => self.tri_solve_rowmajor::<2>(&mut zr),
            4 => self.tri_solve_rowmajor::<4>(&mut zr),
            8 => self.tri_solve_rowmajor::<8>(&mut zr),
            16 => self.tri_solve_rowmajor::<16>(&mut zr),
            32 => self.tri_solve_rowmajor::<32>(&mut zr),
            _ => unreachable!("padded width is a power of two ≤ 32"),
        }
        if kp == k {
            zr
        } else {
            let mut out = vec![0.0f64; n * k];
            for (dst, src) in out.chunks_exact_mut(k).zip(zr.chunks_exact(kp)) {
                dst.copy_from_slice(&src[..k]);
            }
            out
        }
    }

    /// The K-wide row-major triangular solve: forward gather (row `i`
    /// accumulates over earlier rows, accumulator in registers), diagonal
    /// scaling, and the scatter-form backward pass of
    /// [`solve`](Self::solve) (row `kk`, once final, updates all earlier
    /// rows along a contiguous row of `L`). `chunks_exact` over the
    /// row-major block plus `[f64; K]` rows keep the inner loops free of
    /// per-element bounds checks.
    fn tri_solve_rowmajor<const K: usize>(&self, zr: &mut [f64]) {
        let n = self.n;
        // Forward solve L Z = B.
        for i in 0..n {
            let (head, tail) = zr.split_at_mut(i * K);
            let acc_row: &mut [f64; K] = (&mut tail[..K]).try_into().expect("row width K");
            let mut acc = *acc_row;
            for (row, &lik) in head.chunks_exact(K).zip(&self.l[i * n..i * n + i]) {
                let row: &[f64; K] = row.try_into().expect("row width K");
                for j in 0..K {
                    acc[j] -= lik * row[j];
                }
            }
            *acc_row = acc;
        }
        // Diagonal solve.
        for (row, &di) in zr.chunks_exact_mut(K).zip(&self.d) {
            for v in row {
                if di == 0.0 {
                    *v = 0.0;
                } else {
                    *v /= di;
                }
            }
        }
        // Backward solve Lᵀ X = Z (scatter form, same update order as the
        // single-vector solve).
        for kk in (0..n).rev() {
            let (head, tail) = zr.split_at_mut(kk * K);
            let xk: &[f64; K] = (&tail[..K]).try_into().expect("row width K");
            let xk = *xk;
            for (row, &lki) in head.chunks_exact_mut(K).zip(&self.l[kk * n..kk * n + kk]) {
                let row: &mut [f64; K] = row.try_into().expect("row width K");
                for j in 0..K {
                    row[j] -= lki * xk[j];
                }
            }
        }
    }
}

impl LinearOperator for DenseLdl {
    fn dim(&self) -> usize {
        self.n
    }

    /// Applies the (pseudo)inverse: `y ← A⁺-ish b` via the stored factors.
    /// Exposed as an operator so the bottom level plugs into the chain.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let sol = self.solve(x);
        y.copy_from_slice(&sol);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_of;
    use crate::vector::{norm2, project_out_constant, sub};
    use parsdd_graph::generators;

    #[test]
    fn spd_solve_exact() {
        // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
        let a = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let f = DenseLdl::from_dense(&a, 1e-12);
        assert_eq!(f.null_dim(), 0);
        let x = f.solve(&[1.0, 2.0]);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_particular_solution() {
        let g = generators::cycle(8, 1.0);
        let l = laplacian_of(&g);
        let f = DenseLdl::from_csr(&l, 1e-10);
        assert_eq!(f.null_dim(), 1);
        let mut b: Vec<f64> = (0..8).map(|i| i as f64).collect();
        project_out_constant(&mut b);
        let x = f.solve(&b);
        // Check A x = b.
        let ax = l.apply_vec(&x);
        let r = sub(&b, &ax);
        assert!(
            norm2(&r) < 1e-8 * norm2(&b).max(1.0),
            "residual too large: {}",
            norm2(&r)
        );
    }

    #[test]
    fn grid_laplacian_solution() {
        let g = generators::grid2d(5, 5, |_, _| 1.0);
        let l = laplacian_of(&g);
        let f = DenseLdl::from_csr(&l, 1e-10);
        let mut b: Vec<f64> = (0..25).map(|i| ((i * 13) % 7) as f64).collect();
        project_out_constant(&mut b);
        let x = f.solve(&b);
        let r = sub(&b, &l.apply_vec(&x));
        assert!(norm2(&r) < 1e-8);
    }

    #[test]
    fn disconnected_graph_two_null_dirs() {
        use parsdd_graph::{Edge, Graph};
        let g = Graph::from_edges(4, vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 2.0)]);
        let l = laplacian_of(&g);
        let f = DenseLdl::from_csr(&l, 1e-10);
        assert_eq!(f.null_dim(), 2);
        // b orthogonal to each component's indicator.
        let b = vec![1.0, -1.0, 2.0, -2.0];
        let x = f.solve(&b);
        let r = sub(&b, &l.apply_vec(&x));
        assert!(norm2(&r) < 1e-9);
    }

    #[test]
    fn solve_block_matches_single_bitwise() {
        let g = generators::grid2d(7, 7, |_, _| 1.0);
        let l = laplacian_of(&g);
        let f = DenseLdl::from_csr(&l, 1e-10);
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                let mut b: Vec<f64> = (0..49).map(|i| ((i * (j + 3)) % 13) as f64).collect();
                project_out_constant(&mut b);
                b
            })
            .collect();
        let x = f.solve_block(&crate::block::MultiVector::from_columns(&cols));
        for (j, col) in cols.iter().enumerate() {
            let single = f.solve(col);
            for (a, b) in x.col(j).iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "column {j}");
            }
        }
    }

    #[test]
    fn operator_interface_solves() {
        let a = vec![vec![2.0, 0.0], vec![0.0, 5.0]];
        let f = DenseLdl::from_dense(&a, 1e-12);
        let y = f.apply_vec(&[2.0, 10.0]);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!((y[1] - 2.0).abs() < 1e-12);
    }
}
