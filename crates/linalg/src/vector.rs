//! Parallel dense vector kernels.
//!
//! All iterative methods in this crate (CG, PCG, Chebyshev) and in the
//! solver crate are built from these primitives, which use rayon above a
//! size cutoff and plain loops below it.
//!
//! Grain sizes: `SEQ_CUTOFF` gates parallel dispatch entirely (below it a
//! plain loop wins — the fork costs more than the work), and `MIN_LEN`
//! lower-bounds the per-task leaf so the runtime never splits a cheap
//! elementwise loop into sub-microsecond jobs. Both are length-only
//! constants, never thread-count-dependent, which keeps every `f64`
//! reduction tree — and therefore the solver's residuals — bitwise
//! identical at 1 and N threads.

use rayon::prelude::*;

/// Below this length, vector kernels run sequentially.
const SEQ_CUTOFF: usize = 1 << 13;

/// Minimum number of elements a parallel leaf task processes. At ~1 ns per
/// fused multiply-add, a 2048-element leaf is a few microseconds of work —
/// comfortably above the runtime's per-task cost.
const MIN_LEN: usize = 1 << 11;

/// Dot product `xᵀ y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.len() < SEQ_CUTOFF {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    } else {
        x.par_iter()
            .zip(y.par_iter())
            .with_min_len(MIN_LEN)
            .map(|(a, b)| a * b)
            .sum()
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    if x.len() < SEQ_CUTOFF {
        x.iter().fold(0.0, |m, &v| m.max(v.abs()))
    } else {
        x.par_iter()
            .with_min_len(MIN_LEN)
            .map(|v| v.abs())
            .reduce(|| 0.0, f64::max)
    }
}

/// `y ← y + alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    if x.len() < SEQ_CUTOFF {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_iter_mut()
            .zip(x.par_iter())
            .with_min_len(MIN_LEN)
            .for_each(|(yi, xi)| {
                *yi += alpha * xi;
            });
    }
}

/// `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    if x.len() < SEQ_CUTOFF {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    } else {
        x.par_iter_mut()
            .with_min_len(MIN_LEN)
            .for_each(|xi| *xi *= alpha);
    }
}

/// Elementwise `out ← a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    if a.len() < SEQ_CUTOFF {
        a.iter().zip(b).map(|(x, y)| x - y).collect()
    } else {
        a.par_iter()
            .zip(b.par_iter())
            .with_min_len(MIN_LEN)
            .map(|(x, y)| x - y)
            .collect()
    }
}

/// Elementwise `out ← a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    if a.len() < SEQ_CUTOFF {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    } else {
        a.par_iter()
            .zip(b.par_iter())
            .with_min_len(MIN_LEN)
            .map(|(x, y)| x + y)
            .collect()
    }
}

/// `y ← x` (copy in place).
pub fn copy_into(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Sum of all entries.
pub fn sum(x: &[f64]) -> f64 {
    if x.len() < SEQ_CUTOFF {
        x.iter().sum()
    } else {
        x.par_iter().with_min_len(MIN_LEN).copied().sum()
    }
}

/// Projects `x` onto the subspace orthogonal to the all-ones vector, i.e.
/// subtracts the mean. For a connected-graph Laplacian this removes the
/// null-space component of a right-hand side or of an approximate solution.
pub fn project_out_constant(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = sum(x) / x.len() as f64;
    if x.len() < SEQ_CUTOFF {
        for xi in x.iter_mut() {
            *xi -= mean;
        }
    } else {
        x.par_iter_mut()
            .with_min_len(MIN_LEN)
            .for_each(|xi| *xi -= mean);
    }
}

/// Projects `x` onto the subspace orthogonal to the indicator vector of
/// every component: within each component (given by `labels`, values in
/// `0..count`), subtracts that component's mean. This is the null space of
/// a Laplacian with several connected components.
pub fn project_out_componentwise_constant(x: &mut [f64], labels: &[u32], count: usize) {
    assert_eq!(x.len(), labels.len());
    let mut sums = vec![0.0f64; count];
    let mut sizes = vec![0usize; count];
    for (xi, &l) in x.iter().zip(labels) {
        sums[l as usize] += *xi;
        sizes[l as usize] += 1;
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&sizes)
        .map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
        .collect();
    for (xi, &l) in x.iter_mut().zip(labels) {
        *xi -= means[l as usize];
    }
}

/// The `A`-norm `‖x‖_A = sqrt(xᵀ A x)` given `Ax` precomputed.
pub fn a_norm_with(x: &[f64], ax: &[f64]) -> f64 {
    dot(x, ax).max(0.0).sqrt()
}

/// Dot product of column `j` of two **row-major** blocks of width
/// `stride` (entry `i` of the column lives at `i·stride + j`). The
/// reduction tree depends only on the row count — the same tree [`dot`]
/// builds — so for `stride = 1` this *is* `dot` bitwise, and a column's
/// dot is identical whether it travels alone or inside a block, at every
/// pool width.
pub fn dot_strided(x: &[f64], y: &[f64], stride: usize, j: usize) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(j < stride.max(1));
    let n = x.len() / stride.max(1);
    if n < SEQ_CUTOFF {
        (0..n).map(|i| x[i * stride + j] * y[i * stride + j]).sum()
    } else {
        (0..n)
            .into_par_iter()
            .with_min_len(MIN_LEN)
            .map(|i| x[i * stride + j] * y[i * stride + j])
            .sum()
    }
}

/// Per-column dot products of two **row-major** blocks of width `k`:
/// entry `j` of the result is `Σ_i x[i·k+j]·y[i·k+j]`. One pass over both
/// blocks computes all `k` sums (a per-column loop would stream the
/// blocks `k` times).
///
/// Reduction tree: each fixed `MIN_LEN`-row block accumulates
/// sequentially in row order (per column), and block partials combine in
/// block order. The tree depends only on the row count — not on `k` and
/// not on the pool width — so each column's value is bitwise identical
/// whether it travels alone (`k = 1`) or inside any block, at any thread
/// count.
pub fn colwise_dots_rm(x: &[f64], y: &[f64], k: usize) -> Vec<f64> {
    let mut out = Vec::new();
    let mut partial = Vec::new();
    colwise_dots_rm_into(x, y, k, &mut out, &mut partial);
    out
}

/// [`colwise_dots_rm`] into caller-owned buffers: `out` receives the `k`
/// sums, `partial` is block-partial scratch. On the sequential dispatch
/// path (row count below the cutoff) this performs no allocation once
/// both buffers have capacity `k`; the parallel path still collects its
/// per-block partials. Same fixed reduction tree, so results are bitwise
/// identical to [`colwise_dots_rm`].
pub fn colwise_dots_rm_into(
    x: &[f64],
    y: &[f64],
    k: usize,
    out: &mut Vec<f64>,
    partial: &mut Vec<f64>,
) {
    assert_eq!(x.len(), y.len());
    out.clear();
    if k == 0 {
        return;
    }
    assert_eq!(x.len() % k, 0, "buffer is not a whole block");
    let n = x.len() / k;
    let blocks = n.div_ceil(MIN_LEN).max(1);
    let block_into = |b: usize, acc: &mut [f64]| {
        let lo = b * MIN_LEN;
        let hi = ((b + 1) * MIN_LEN).min(n);
        for i in lo..hi {
            let xr = &x[i * k..(i + 1) * k];
            let yr = &y[i * k..(i + 1) * k];
            for (a, (&xv, &yv)) in acc.iter_mut().zip(xr.iter().zip(yr)) {
                *a += xv * yv;
            }
        }
    };
    out.resize(k, 0.0);
    if n < SEQ_CUTOFF {
        // Block partials accumulate into reused scratch and fold into
        // `out` in block order — the same tree the collecting path builds.
        for b in 0..blocks {
            partial.clear();
            partial.resize(k, 0.0);
            block_into(b, partial);
            for (o, &v) in out.iter_mut().zip(partial.iter()) {
                *o += v;
            }
        }
    } else {
        let partials: Vec<Vec<f64>> = (0..blocks)
            .into_par_iter()
            .map(|b| {
                let mut acc = vec![0.0f64; k];
                block_into(b, &mut acc);
                acc
            })
            .collect();
        for part in &partials {
            for (o, &v) in out.iter_mut().zip(part) {
                *o += v;
            }
        }
    }
}

/// Componentwise-mean projection of every column of a **row-major**
/// block of width `k` (the row-major counterpart of
/// [`project_out_componentwise_constant`]; per column the accumulation
/// order over rows is identical, so the results match it bitwise).
pub fn project_out_componentwise_rows(xr: &mut [f64], k: usize, labels: &[u32], count: usize) {
    let mut sums = Vec::new();
    let mut sizes = Vec::new();
    project_out_componentwise_rows_with(xr, k, labels, count, &mut sums, &mut sizes);
}

/// [`project_out_componentwise_rows`] with caller-owned accumulator
/// buffers (`count·k` sums, `count` sizes) — allocation-free once both
/// have capacity; identical arithmetic.
pub fn project_out_componentwise_rows_with(
    xr: &mut [f64],
    k: usize,
    labels: &[u32],
    count: usize,
    sums: &mut Vec<f64>,
    sizes: &mut Vec<usize>,
) {
    if k == 0 {
        return;
    }
    assert_eq!(xr.len(), labels.len() * k);
    sums.clear();
    sums.resize(count * k, 0.0);
    sizes.clear();
    sizes.resize(count, 0);
    for (row, &l) in xr.chunks_exact(k).zip(labels) {
        let s = &mut sums[l as usize * k..(l as usize + 1) * k];
        for (acc, &v) in s.iter_mut().zip(row) {
            *acc += v;
        }
        sizes[l as usize] += 1;
    }
    for (comp, chunk) in sums.chunks_exact_mut(k).enumerate() {
        let sz = sizes[comp];
        for m in chunk.iter_mut() {
            *m = if sz == 0 { 0.0 } else { *m / sz as f64 };
        }
    }
    for (row, &l) in xr.chunks_exact_mut(k).zip(labels) {
        let means = &sums[l as usize * k..(l as usize + 1) * k];
        for (v, &m) in row.iter_mut().zip(means) {
            *v -= m;
        }
    }
}

/// Fused componentwise-mean projection **and** f32 narrowing: reads the
/// f64 block, writes `(v − mean) as f32` into `out32` without an f64
/// staging copy. The mean accumulation and subtraction run in f64 in
/// exactly [`project_out_componentwise_rows_with`]'s order, so the
/// narrowed result is bitwise what projecting in place and then
/// narrowing would produce — this only deletes the intermediate copy and
/// the separate narrowing pass (two of the five passes the f32 bottom
/// prelude used to make per solve).
pub fn project_out_componentwise_rows_narrowing(
    xr: &[f64],
    k: usize,
    labels: &[u32],
    count: usize,
    sums: &mut Vec<f64>,
    sizes: &mut Vec<usize>,
    out32: &mut Vec<f32>,
) {
    if k == 0 {
        out32.clear();
        return;
    }
    assert_eq!(xr.len(), labels.len() * k);
    sums.clear();
    sums.resize(count * k, 0.0);
    sizes.clear();
    sizes.resize(count, 0);
    for (row, &l) in xr.chunks_exact(k).zip(labels) {
        let s = &mut sums[l as usize * k..(l as usize + 1) * k];
        for (acc, &v) in s.iter_mut().zip(row) {
            *acc += v;
        }
        sizes[l as usize] += 1;
    }
    for (comp, chunk) in sums.chunks_exact_mut(k).enumerate() {
        let sz = sizes[comp];
        for m in chunk.iter_mut() {
            *m = if sz == 0 { 0.0 } else { *m / sz as f64 };
        }
    }
    out32.clear();
    out32.resize(xr.len(), 0.0);
    for ((row, orow), &l) in xr
        .chunks_exact(k)
        .zip(out32.chunks_exact_mut(k))
        .zip(labels)
    {
        let means = &sums[l as usize * k..(l as usize + 1) * k];
        for ((&v, &m), o) in row.iter().zip(means).zip(orow) {
            *o = (v - m) as f32;
        }
    }
}

/// Componentwise-mean projection of an **f32** row-major block — the
/// all-f32 inner W-cycle's counterpart of
/// [`project_out_componentwise_rows_with`]. Sums accumulate in f32 (the
/// rhs is already at f32 rounding scale; components are small at the
/// bottom where this runs); per column the accumulation order over rows
/// matches the f64 helper's, so every block width produces the same bits
/// as width 1.
pub fn project_out_componentwise_rows_f32_with(
    xr: &mut [f32],
    k: usize,
    labels: &[u32],
    count: usize,
    sums: &mut Vec<f32>,
    sizes: &mut Vec<usize>,
) {
    if k == 0 {
        return;
    }
    assert_eq!(xr.len(), labels.len() * k);
    sums.clear();
    sums.resize(count * k, 0.0);
    sizes.clear();
    sizes.resize(count, 0);
    for (row, &l) in xr.chunks_exact(k).zip(labels) {
        let s = &mut sums[l as usize * k..(l as usize + 1) * k];
        for (acc, &v) in s.iter_mut().zip(row) {
            *acc += v;
        }
        sizes[l as usize] += 1;
    }
    for (comp, chunk) in sums.chunks_exact_mut(k).enumerate() {
        let sz = sizes[comp];
        for m in chunk.iter_mut() {
            *m = if sz == 0 { 0.0 } else { *m / sz as f32 };
        }
    }
    for (row, &l) in xr.chunks_exact_mut(k).zip(labels) {
        let means = &sums[l as usize * k..(l as usize + 1) * k];
        for (v, &m) in row.iter_mut().zip(means) {
            *v -= m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 12.0);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(norm_inf(&y), 6.0);
    }

    #[test]
    fn axpy_scale_add_sub() {
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.0, 2.5]);
        assert_eq!(add(&x, &x), vec![2.0, 2.0, 2.0]);
        assert_eq!(sub(&y, &x), vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn large_vectors_parallel_path() {
        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![1.0; n];
        let expected = (n as f64 - 1.0) * n as f64 / 2.0;
        assert!((dot(&x, &y) - expected).abs() < 1e-3);
        assert!((sum(&x) - expected).abs() < 1e-3);
        let mut z = x.clone();
        scale(2.0, &mut z);
        assert_eq!(z[1000], 2000.0);
    }

    #[test]
    fn projection_removes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 6.0];
        project_out_constant(&mut x);
        assert!(sum(&x).abs() < 1e-12);
        assert_eq!(x[0], -2.0);
    }

    #[test]
    fn componentwise_projection() {
        let mut x = vec![1.0, 3.0, 10.0, 20.0, 30.0];
        let labels = vec![0, 0, 1, 1, 1];
        project_out_componentwise_constant(&mut x, &labels, 2);
        assert!((x[0] + 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] + 10.0).abs() < 1e-12);
        assert!((x[4] - 10.0).abs() < 1e-12);
        assert!((x[2] + x[3] + x[4]).abs() < 1e-12);
    }

    #[test]
    fn fused_projection_narrowing_matches_two_step_bitwise() {
        // The fused project-and-narrow pass must produce exactly the bits
        // of projecting in place (f64) and then narrowing each entry.
        let n = 37;
        let k = 3;
        let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let xr: Vec<f64> = (0..n * k)
            .map(|i| ((i * 17) % 31) as f64 / 7.0 - 2.0)
            .collect();
        let mut two_step = xr.clone();
        project_out_componentwise_rows(&mut two_step, k, &labels, 2);
        let expect: Vec<f32> = two_step.iter().map(|&v| v as f32).collect();
        let (mut sums, mut sizes, mut got) = (Vec::new(), Vec::new(), Vec::new());
        project_out_componentwise_rows_narrowing(
            &xr, k, &labels, 2, &mut sums, &mut sizes, &mut got,
        );
        assert_eq!(got.len(), expect.len());
        for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "entry {i}");
        }
    }

    #[test]
    fn colwise_dots_match_single_column_at_any_width() {
        // k-invariance (and pool-width determinism via the fixed block
        // tree): column j of a k-wide block must produce the same bits as
        // the same column at k = 1, on both dispatch paths.
        for n in [300usize, 20_000] {
            let k = 3;
            let mut x = vec![0.0f64; n * k];
            let mut y = vec![0.0f64; n * k];
            for i in 0..n {
                for j in 0..k {
                    x[i * k + j] = ((i * (j + 2)) % 23) as f64 - 11.0;
                    y[i * k + j] = ((i * (j + 5)) % 19) as f64 - 9.0;
                }
            }
            let d = colwise_dots_rm(&x, &y, k);
            for j in 0..k {
                let xc: Vec<f64> = (0..n).map(|i| x[i * k + j]).collect();
                let yc: Vec<f64> = (0..n).map(|i| y[i * k + j]).collect();
                let d1 = colwise_dots_rm(&xc, &yc, 1);
                assert_eq!(d[j].to_bits(), d1[0].to_bits(), "n={n} col {j}");
                // And the sums are right.
                let expect: f64 = xc.iter().zip(&yc).map(|(a, b)| a * b).sum();
                assert!((d[j] - expect).abs() < 1e-6 * expect.abs().max(1.0));
            }
        }
    }

    #[test]
    fn a_norm_nonnegative() {
        let x = vec![1.0, -1.0];
        let ax = vec![2.0, -2.0];
        assert!((a_norm_with(&x, &ax) - 2.0).abs() < 1e-12);
    }
}
