//! Spectral estimation utilities.
//!
//! The paper's chain guarantees are spectral inequalities (`G ⪯ H ⪯ κ·G`,
//! Lemma 6.1/6.2, Definition 6.3). We verify them empirically in tests and
//! experiments with two tools:
//!
//! * [`largest_eigenvalue`] — power iteration for `λ_max(A)` (optionally
//!   deflating the all-ones null space of a Laplacian);
//! * [`quadratic_form_ratio_bounds`] — samples random test vectors and
//!   returns the observed range of `x|L_G x / x|L_H x`, a practical probe
//!   of the relative condition number of two graphs on the same vertex set.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use parsdd_graph::Graph;

use crate::laplacian::laplacian_quadratic_form;
use crate::operator::LinearOperator;
use crate::vector::{dot, norm2, project_out_constant, scale};

/// Power iteration estimate of the largest eigenvalue of a symmetric PSD
/// operator. When `deflate_constant` is set, the all-ones direction is
/// projected out each step (appropriate for Laplacians of connected
/// graphs).
pub fn largest_eigenvalue(
    a: &dyn LinearOperator,
    iterations: usize,
    deflate_constant: bool,
    seed: u64,
) -> f64 {
    let n = a.dim();
    if n == 0 {
        return 0.0;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if deflate_constant {
        project_out_constant(&mut v);
    }
    let nv = norm2(&v);
    if nv == 0.0 {
        return 0.0;
    }
    scale(1.0 / nv, &mut v);
    let mut lambda = 0.0;
    let mut av = vec![0.0; n];
    for _ in 0..iterations {
        a.apply(&v, &mut av);
        if deflate_constant {
            project_out_constant(&mut av);
        }
        lambda = dot(&v, &av);
        let norm = norm2(&av);
        if norm <= f64::MIN_POSITIVE {
            return 0.0;
        }
        v.copy_from_slice(&av);
        scale(1.0 / norm, &mut v);
    }
    lambda.max(0.0)
}

/// Deterministic pseudo-random start vector for power iteration
/// (SplitMix64 bits, mean-free only after the caller's projection).
fn splitmix_vector(n: usize, state: &mut u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((z >> 11) as f64) / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Estimates the spectrum interval `[λ_min, λ_max]` of a symmetric(izable)
/// positive map given only as a closure `apply: v ↦ M v`, restricted to the
/// subspace the caller's `project` keeps (e.g. the complement of a
/// Laplacian's per-component constant null space).
///
/// `λ_max` comes from plain power iteration; `λ_min` from power iteration
/// on the shifted map `s·I − M` with `s = 1.05·λ_max`, whose dominant
/// eigenvalue is `s − λ_min`. Both passes start from deterministic
/// SplitMix64 vectors derived from `seed`, so the result is reproducible
/// (and, when `apply` is built from width-independent parallel reductions,
/// bitwise identical at every thread count).
///
/// Returns `None` when the map is degenerate on the projected subspace
/// (zero or non-finite growth), in which case the caller should keep
/// whatever provisional bounds it has. This is the calibration primitive
/// behind the solver chain's per-level Chebyshev intervals: Chebyshev
/// polynomials grow exponentially *outside* their interval, so intervals
/// must bracket the spectrum of the *effective* (inexactly preconditioned)
/// operator, which only a measurement like this can provide.
pub fn spectrum_bounds_of_map(
    n: usize,
    mut apply: impl FnMut(&[f64]) -> Vec<f64>,
    project: impl Fn(&mut Vec<f64>),
    iterations: usize,
    seed: u64,
) -> Option<(f64, f64)> {
    if n == 0 {
        return None;
    }
    let normalize = |x: &mut Vec<f64>| -> f64 {
        let nrm = norm2(x);
        if nrm > 0.0 {
            scale(1.0 / nrm, x);
        }
        nrm
    };
    let mut state = seed;
    let mut v = splitmix_vector(n, &mut state);
    project(&mut v);
    normalize(&mut v);

    let mut lambda_max = 0.0f64;
    for _ in 0..iterations {
        let mut w = apply(&v);
        project(&mut w);
        let growth = normalize(&mut w);
        if !growth.is_finite() || growth == 0.0 {
            lambda_max = 0.0;
            break;
        }
        lambda_max = growth;
        v = w;
    }
    if !(lambda_max.is_finite() && lambda_max > 0.0) {
        return None;
    }

    // λ_min via the shifted map. Fresh random start: the λ_max eigenvector
    // has essentially no overlap with the λ_min one.
    let shift = lambda_max * 1.05;
    let mut u = splitmix_vector(n, &mut state);
    project(&mut u);
    normalize(&mut u);
    let mut shifted_max = 0.0f64;
    for _ in 0..iterations {
        let mu = apply(&u);
        let mut w: Vec<f64> = u.iter().zip(&mu).map(|(ui, mi)| shift * ui - mi).collect();
        project(&mut w);
        let growth = normalize(&mut w);
        if !growth.is_finite() || growth == 0.0 {
            shifted_max = 0.0;
            break;
        }
        shifted_max = growth;
        u = w;
    }
    let lambda_min = if shifted_max > 0.0 && shifted_max.is_finite() {
        (shift - shifted_max).max(lambda_max * 1e-8)
    } else {
        lambda_max * 1e-4
    };
    Some((lambda_min, lambda_max))
}

/// Samples `samples` random vectors orthogonal to the all-ones vector and
/// returns the minimum and maximum observed ratio
/// `xᵀ L_G x / xᵀ L_H x` over samples where the denominator is non-zero.
///
/// If `H` satisfies `G ⪯ H ⪯ κ·G`, every ratio lies in `[1/κ, 1]` up to a
/// global scaling — the experiments check the *observed* ratio spread
/// against the chain's target `κ`.
pub fn quadratic_form_ratio_bounds(g: &Graph, h: &Graph, samples: usize, seed: u64) -> (f64, f64) {
    assert_eq!(g.n(), h.n(), "graphs must share a vertex set");
    let n = g.n();
    // The sample vectors come from one sequential RNG stream (their values
    // must not depend on scheduling), but the expensive part — two
    // quadratic forms per sample — is an independent map over samples.
    // min/max over the in-order ratio list is exact (no rounding), so the
    // result is bitwise identical at every pool width.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..samples)
        .map(|_| {
            let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            project_out_constant(&mut x);
            x
        })
        .collect();
    let ratios: Vec<Option<f64>> = xs
        .par_iter()
        .map(|x| {
            let qg = laplacian_quadratic_form(g, x);
            let qh = laplacian_quadratic_form(h, x);
            (qh > 1e-300).then(|| qg / qh)
        })
        .collect();
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for ratio in ratios.into_iter().flatten() {
        lo = lo.min(ratio);
        hi = hi.max(ratio);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::LaplacianOp;
    use crate::operator::DiagonalOperator;
    use parsdd_graph::generators;

    #[test]
    fn power_iteration_on_diagonal() {
        let d = DiagonalOperator::new(vec![1.0, 5.0, 3.0]);
        let l = largest_eigenvalue(&d, 200, false, 1);
        assert!((l - 5.0).abs() < 1e-6, "estimate {l}");
    }

    #[test]
    fn complete_graph_laplacian_top_eigenvalue() {
        // K_n with unit weights has non-zero eigenvalues all equal to n.
        let g = generators::complete(8, 1.0);
        let op = LaplacianOp::new(&g);
        let l = largest_eigenvalue(&op, 300, true, 2);
        assert!((l - 8.0).abs() < 1e-4, "estimate {l}");
    }

    #[test]
    fn spectrum_bounds_of_diagonal_map() {
        let d = [0.5f64, 2.0, 7.0, 1.0];
        let bounds = spectrum_bounds_of_map(
            4,
            |v| v.iter().zip(d.iter()).map(|(x, di)| di * x).collect(),
            |_| {},
            200,
            42,
        )
        .expect("non-degenerate map");
        assert!((bounds.1 - 7.0).abs() < 1e-6, "λ_max {}", bounds.1);
        assert!((bounds.0 - 0.5).abs() < 1e-3, "λ_min {}", bounds.0);
    }

    #[test]
    fn spectrum_bounds_degenerate_zero_map() {
        let bounds = spectrum_bounds_of_map(5, |v| vec![0.0; v.len()], |_| {}, 20, 1);
        assert!(bounds.is_none());
    }

    #[test]
    fn spectrum_bounds_respect_projection() {
        // The identity on the mean-zero subspace: projecting out the
        // constant leaves λ_min = λ_max = 1.
        let bounds = spectrum_bounds_of_map(6, |v| v.to_vec(), |x| project_out_constant(x), 50, 9)
            .expect("non-degenerate");
        assert!((bounds.1 - 1.0).abs() < 1e-9);
        assert!(bounds.0 <= bounds.1 + 1e-12);
    }

    #[test]
    fn ratio_bounds_identical_graphs() {
        let g = generators::grid2d(6, 6, |_, _| 1.0);
        let (lo, hi) = quadratic_form_ratio_bounds(&g, &g, 20, 3);
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_bounds_scaled_graph() {
        let g = generators::grid2d(5, 7, |_, _| 1.0);
        // H = 2 * G (every weight doubled): ratios must all be exactly 0.5.
        let h = {
            let edges = g
                .edges()
                .iter()
                .map(|e| parsdd_graph::Edge::new(e.u, e.v, 2.0 * e.w))
                .collect();
            Graph::from_edges(g.n(), edges)
        };
        let (lo, hi) = quadratic_form_ratio_bounds(&g, &h, 25, 4);
        assert!((lo - 0.5).abs() < 1e-12);
        assert!((hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subgraph_dominated_by_graph() {
        // H = spanning tree of G: then H ⪯ G, so x'G x / x'H x >= 1.
        let g = generators::weighted_random_graph(60, 200, 1.0, 2.0, 6);
        let tree_edges = parsdd_graph::mst::kruskal(&g);
        let h = g.edge_subgraph(&tree_edges);
        let (lo, _hi) = quadratic_form_ratio_bounds(&g, &h, 30, 5);
        assert!(
            lo >= 1.0 - 1e-9,
            "tree energy must not exceed graph energy, lo={lo}"
        );
    }
}
