//! Spectral estimation utilities.
//!
//! The paper's chain guarantees are spectral inequalities (`G ⪯ H ⪯ κ·G`,
//! Lemma 6.1/6.2, Definition 6.3). We verify them empirically in tests and
//! experiments with two tools:
//!
//! * [`largest_eigenvalue`] — power iteration for `λ_max(A)` (optionally
//!   deflating the all-ones null space of a Laplacian);
//! * [`quadratic_form_ratio_bounds`] — samples random test vectors and
//!   returns the observed range of `x|L_G x / x|L_H x`, a practical probe
//!   of the relative condition number of two graphs on the same vertex set.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use parsdd_graph::Graph;

use crate::laplacian::laplacian_quadratic_form;
use crate::operator::LinearOperator;
use crate::vector::{dot, norm2, project_out_constant, scale};

/// Power iteration estimate of the largest eigenvalue of a symmetric PSD
/// operator. When `deflate_constant` is set, the all-ones direction is
/// projected out each step (appropriate for Laplacians of connected
/// graphs).
pub fn largest_eigenvalue(
    a: &dyn LinearOperator,
    iterations: usize,
    deflate_constant: bool,
    seed: u64,
) -> f64 {
    let n = a.dim();
    if n == 0 {
        return 0.0;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if deflate_constant {
        project_out_constant(&mut v);
    }
    let nv = norm2(&v);
    if nv == 0.0 {
        return 0.0;
    }
    scale(1.0 / nv, &mut v);
    let mut lambda = 0.0;
    let mut av = vec![0.0; n];
    for _ in 0..iterations {
        a.apply(&v, &mut av);
        if deflate_constant {
            project_out_constant(&mut av);
        }
        lambda = dot(&v, &av);
        let norm = norm2(&av);
        if norm <= f64::MIN_POSITIVE {
            return 0.0;
        }
        v.copy_from_slice(&av);
        scale(1.0 / norm, &mut v);
    }
    lambda.max(0.0)
}

/// Samples `samples` random vectors orthogonal to the all-ones vector and
/// returns the minimum and maximum observed ratio
/// `xᵀ L_G x / xᵀ L_H x` over samples where the denominator is non-zero.
///
/// If `H` satisfies `G ⪯ H ⪯ κ·G`, every ratio lies in `[1/κ, 1]` up to a
/// global scaling — the experiments check the *observed* ratio spread
/// against the chain's target `κ`.
pub fn quadratic_form_ratio_bounds(g: &Graph, h: &Graph, samples: usize, seed: u64) -> (f64, f64) {
    assert_eq!(g.n(), h.n(), "graphs must share a vertex set");
    let n = g.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for _ in 0..samples {
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        project_out_constant(&mut x);
        let qg = laplacian_quadratic_form(g, &x);
        let qh = laplacian_quadratic_form(h, &x);
        if qh <= 1e-300 {
            continue;
        }
        let ratio = qg / qh;
        lo = lo.min(ratio);
        hi = hi.max(ratio);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::LaplacianOp;
    use crate::operator::DiagonalOperator;
    use parsdd_graph::generators;

    #[test]
    fn power_iteration_on_diagonal() {
        let d = DiagonalOperator::new(vec![1.0, 5.0, 3.0]);
        let l = largest_eigenvalue(&d, 200, false, 1);
        assert!((l - 5.0).abs() < 1e-6, "estimate {l}");
    }

    #[test]
    fn complete_graph_laplacian_top_eigenvalue() {
        // K_n with unit weights has non-zero eigenvalues all equal to n.
        let g = generators::complete(8, 1.0);
        let op = LaplacianOp::new(&g);
        let l = largest_eigenvalue(&op, 300, true, 2);
        assert!((l - 8.0).abs() < 1e-4, "estimate {l}");
    }

    #[test]
    fn ratio_bounds_identical_graphs() {
        let g = generators::grid2d(6, 6, |_, _| 1.0);
        let (lo, hi) = quadratic_form_ratio_bounds(&g, &g, 20, 3);
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_bounds_scaled_graph() {
        let g = generators::grid2d(5, 7, |_, _| 1.0);
        // H = 2 * G (every weight doubled): ratios must all be exactly 0.5.
        let h = {
            let edges = g
                .edges()
                .iter()
                .map(|e| parsdd_graph::Edge::new(e.u, e.v, 2.0 * e.w))
                .collect();
            Graph::from_edges(g.n(), edges)
        };
        let (lo, hi) = quadratic_form_ratio_bounds(&g, &h, 25, 4);
        assert!((lo - 0.5).abs() < 1e-12);
        assert!((hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subgraph_dominated_by_graph() {
        // H = spanning tree of G: then H ⪯ G, so x'G x / x'H x >= 1.
        let g = generators::weighted_random_graph(60, 200, 1.0, 2.0, 6);
        let tree_edges = parsdd_graph::mst::kruskal(&g);
        let h = g.edge_subgraph(&tree_edges);
        let (lo, _hi) = quadratic_form_ratio_bounds(&g, &h, 30, 5);
        assert!(
            lo >= 1.0 - 1e-9,
            "tree energy must not exceed graph energy, lo={lo}"
        );
    }
}
