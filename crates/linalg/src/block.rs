//! Column-blocked dense vectors (`MultiVector`) and blocked kernels.
//!
//! Every application of the solver is a many-right-hand-side workload —
//! Spielman–Srivastava effective resistances alone do `O(log n)` solves
//! against the same Laplacian — yet a single-vector solve path re-streams
//! every chain level's sparse matrix through memory once *per* right-hand
//! side. A [`MultiVector`] packs `k` right-hand sides as the columns of a
//! column-major block so that the expensive operators (sparse
//! matrix–block products, elimination traces, dense triangular solves)
//! stream their matrix **once per block** instead of once per vector.
//!
//! **Layout.** Column-major, `ncols = k`: column `j` is the contiguous
//! slice `data[j·n .. (j+1)·n]`. Contiguous columns mean every
//! single-vector kernel of [`crate::vector`] applies unchanged to a
//! column, which is what keeps the blocked path *bitwise identical per
//! column* to the `k = 1` path: per-column reductions (dot, norm) run the
//! same length-`n` reduction tree whether the column travels alone or in
//! a block, and elementwise updates are partition-independent. The solver
//! relies on this — `solve_many` of `k` systems returns exactly the bits
//! a loop of single `solve` calls returns (see `DESIGN.md` §2.2).
//!
//! **Parallel row access.** Blocked sparse kernels want to parallelise
//! over *rows* while writing all `k` columns — with a column-major block
//! that is `k` interleaved sub-slices per row range, which
//! [`MultiVector::row_chunks_mut`] materialises safely (a vector of
//! per-chunk column-slice groups; no `unsafe`). The chunk size is a fixed
//! row count, so the decomposition — like every split tree in the rayon
//! shim — is independent of the pool width.

use rayon::prelude::*;

use crate::vector;

/// A column-major block of `ncols` dense vectors of length `nrows`
/// (`k` right-hand sides or iterates travelling together).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVector {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl MultiVector {
    /// The all-zero block of `ncols` columns of length `nrows`.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MultiVector {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Packs `columns` (all of equal length) into a block.
    ///
    /// Panics if the columns have unequal lengths.
    pub fn from_columns<C: AsRef<[f64]>>(columns: &[C]) -> Self {
        let ncols = columns.len();
        let nrows = columns.first().map_or(0, |c| c.as_ref().len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for c in columns {
            let c = c.as_ref();
            assert_eq!(c.len(), nrows, "ragged columns");
            data.extend_from_slice(c);
        }
        MultiVector { nrows, ncols, data }
    }

    /// The `k = 1` block holding a copy of one vector.
    pub fn from_column(column: &[f64]) -> Self {
        MultiVector {
            nrows: column.len(),
            ncols: 1,
            data: column.to_vec(),
        }
    }

    /// Number of rows (the dimension `n`).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (the block width `k`).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a contiguous mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Iterator over the columns.
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.nrows.max(1)).take(self.ncols)
    }

    /// Unpacks into owned per-column vectors.
    pub fn into_columns(self) -> Vec<Vec<f64>> {
        let nrows = self.nrows;
        let mut data = self.data;
        let mut out = Vec::with_capacity(self.ncols);
        for _ in 0..self.ncols {
            let rest = data.split_off(nrows.min(data.len()));
            out.push(data);
            data = rest;
        }
        out
    }

    /// The flat column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat column-major storage, mutably (elementwise updates with
    /// column-independent scalars may run on the flat view — per-element
    /// arithmetic is identical at every block width and partition).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// The sub-block holding the listed columns, in order (used to deflate
    /// converged columns out of an iteration).
    pub fn select_columns(&self, keep: &[usize]) -> Self {
        let mut data = Vec::with_capacity(self.nrows * keep.len());
        for &j in keep {
            data.extend_from_slice(self.col(j));
        }
        MultiVector {
            nrows: self.nrows,
            ncols: keep.len(),
            data,
        }
    }

    /// The row-major (interleaved) copy of the block: entry `(i, j)` at
    /// `i·k + j`. This is the layout the solver chain's W-cycle uses
    /// internally (contiguous k-wide rows); the transpose is tiled so the
    /// scattered side of the copy stays cache-resident.
    pub fn to_rowmajor(&self) -> Vec<f64> {
        let (n, k) = (self.nrows, self.ncols);
        let mut out = vec![0.0f64; n * k];
        const TILE: usize = 64;
        let mut i0 = 0;
        while i0 < n {
            let iend = (i0 + TILE).min(n);
            for (j, col) in self.columns().enumerate() {
                for i in i0..iend {
                    out[i * k + j] = col[i];
                }
            }
            i0 = iend;
        }
        out
    }

    /// Rebuilds a column-major block from a row-major buffer of width
    /// `ncols` (the inverse of [`to_rowmajor`](Self::to_rowmajor)).
    pub fn from_rowmajor(data: &[f64], ncols: usize) -> Self {
        assert!(ncols > 0, "need at least one column");
        assert_eq!(data.len() % ncols, 0, "buffer is not a whole block");
        let nrows = data.len() / ncols;
        let mut mv = MultiVector::zeros(nrows, ncols);
        const TILE: usize = 64;
        let mut cols: Vec<&mut [f64]> = mv.data.chunks_exact_mut(nrows.max(1)).collect();
        let mut i0 = 0;
        while i0 < nrows {
            let iend = (i0 + TILE).min(nrows);
            for (j, col) in cols.iter_mut().enumerate() {
                for i in i0..iend {
                    col[i] = data[i * ncols + j];
                }
            }
            i0 = iend;
        }
        drop(cols);
        mv
    }

    /// Splits the block into row chunks of (at most) `chunk_rows` rows:
    /// entry `c` of the result holds, for every column, the mutable slice
    /// of that column's rows `[c·chunk_rows, (c+1)·chunk_rows)`. This is
    /// the safe row-parallel access pattern for blocked sparse kernels:
    /// hand the groups to `into_par_iter` and each task owns one row range
    /// across all `k` columns.
    pub fn row_chunks_mut(&mut self, chunk_rows: usize) -> Vec<Vec<&mut [f64]>> {
        let chunk = chunk_rows.max(1);
        if self.nrows == 0 {
            return Vec::new();
        }
        let nchunks = self.nrows.div_ceil(chunk);
        let mut groups: Vec<Vec<&mut [f64]>> = (0..nchunks)
            .map(|_| Vec::with_capacity(self.ncols))
            .collect();
        for col in self.data.chunks_mut(self.nrows) {
            for (group, piece) in groups.iter_mut().zip(col.chunks_mut(chunk)) {
                group.push(piece);
            }
        }
        groups
    }
}

/// Per-column dot products `x_jᵀ y_j` (each column runs the exact
/// reduction tree of [`vector::dot`], so results match the single-vector
/// kernel bitwise).
pub fn column_dots(x: &MultiVector, y: &MultiVector) -> Vec<f64> {
    assert_eq!(x.nrows(), y.nrows());
    assert_eq!(x.ncols(), y.ncols());
    (0..x.ncols())
        .map(|j| vector::dot(x.col(j), y.col(j)))
        .collect()
}

/// Per-column Euclidean norms.
pub fn column_norms(x: &MultiVector) -> Vec<f64> {
    (0..x.ncols()).map(|j| vector::norm2(x.col(j))).collect()
}

/// Per-column `y_j ← y_j + alpha_j · x_j`.
pub fn column_axpy(alphas: &[f64], x: &MultiVector, y: &mut MultiVector) {
    assert_eq!(alphas.len(), x.ncols());
    assert_eq!(x.ncols(), y.ncols());
    assert_eq!(x.nrows(), y.nrows());
    for (j, &a) in alphas.iter().enumerate() {
        vector::axpy(a, x.col(j), y.col_mut(j));
    }
}

/// Per-column `p_j ← z_j + beta_j · p_j` (the CG direction update).
pub fn column_direction_update(betas: &[f64], z: &MultiVector, p: &mut MultiVector) {
    assert_eq!(betas.len(), z.ncols());
    assert_eq!(z.ncols(), p.ncols());
    let n = z.nrows();
    for (j, &beta) in betas.iter().enumerate() {
        let zj = z.col(j);
        let pj = p.col_mut(j);
        for i in 0..n {
            pj[i] = zj[i] + beta * pj[i];
        }
    }
}

/// Row-chunk size of the blocked sparse kernels: big enough to amortise
/// task dispatch over rows with ~2 nonzeros, small enough to keep a
/// 16-wide pool fed on bench-size levels. Fixed (never width-dependent)
/// so blocked results are bitwise reproducible at every pool width.
pub const BLOCK_ROW_CHUNK: usize = 1 << 9;

/// Applies a per-row kernel `row(v, acc)` — which must fill `acc[j]` with
/// row `v`'s value for column `j` — across all rows of `y`, in parallel
/// over fixed-size row chunks. This is the driver shared by the blocked
/// Laplacian and CSR products: the caller's kernel streams the matrix row
/// once and reuses it for all `k` columns.
pub fn fill_rows_blocked<F>(y: &mut MultiVector, parallel: bool, row: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let k = y.ncols();
    if k == 0 || y.nrows() == 0 {
        return;
    }
    let groups = y.row_chunks_mut(BLOCK_ROW_CHUNK);
    let run = |(chunk_index, mut cols): (usize, Vec<&mut [f64]>)| {
        let base = chunk_index * BLOCK_ROW_CHUNK;
        let rows = cols[0].len();
        let mut acc = vec![0.0f64; k];
        for r in 0..rows {
            row(base + r, &mut acc);
            for (c, &a) in cols.iter_mut().zip(acc.iter()) {
                c[r] = a;
            }
        }
    };
    if parallel && groups.len() > 1 {
        groups.into_par_iter().enumerate().for_each(run);
    } else {
        groups.into_iter().enumerate().for_each(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_column_access() {
        let mv = MultiVector::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(mv.nrows(), 2);
        assert_eq!(mv.ncols(), 2);
        assert_eq!(mv.col(0), &[1.0, 2.0]);
        assert_eq!(mv.col(1), &[3.0, 4.0]);
        let cols = mv.clone().into_columns();
        assert_eq!(cols, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let one = MultiVector::from_column(&[5.0, 6.0]);
        assert_eq!(one.ncols(), 1);
        assert_eq!(one.col(0), &[5.0, 6.0]);
    }

    #[test]
    fn select_columns_deflates() {
        let mv = MultiVector::from_columns(&[vec![1.0], vec![2.0], vec![3.0]]);
        let kept = mv.select_columns(&[2, 0]);
        assert_eq!(kept.ncols(), 2);
        assert_eq!(kept.col(0), &[3.0]);
        assert_eq!(kept.col(1), &[1.0]);
    }

    #[test]
    fn row_chunks_cover_all_rows_per_column() {
        let n = 1500;
        let mut mv = MultiVector::zeros(n, 3);
        for group in mv.row_chunks_mut(512) {
            assert_eq!(group.len(), 3);
        }
        // Writing through the chunks touches every entry exactly once.
        let mut seen = MultiVector::zeros(n, 3);
        for (ci, group) in seen.row_chunks_mut(512).into_iter().enumerate() {
            for (j, col) in group.into_iter().enumerate() {
                for (r, slot) in col.iter_mut().enumerate() {
                    *slot = (ci * 512 + r) as f64 + 1000.0 * j as f64;
                }
            }
        }
        for j in 0..3 {
            for (r, &v) in seen.col(j).iter().enumerate() {
                assert_eq!(v, r as f64 + 1000.0 * j as f64);
            }
        }
    }

    #[test]
    fn column_kernels_match_vector_kernels() {
        let a: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).cos()).collect();
        let x = MultiVector::from_columns(&[a.clone(), b.clone()]);
        let dots = column_dots(&x, &x);
        assert_eq!(dots[0].to_bits(), vector::dot(&a, &a).to_bits());
        assert_eq!(dots[1].to_bits(), vector::dot(&b, &b).to_bits());
        let norms = column_norms(&x);
        assert_eq!(norms[0].to_bits(), vector::norm2(&a).to_bits());

        let mut y = MultiVector::from_columns(&[b.clone(), a.clone()]);
        column_axpy(&[2.0, -1.0], &x, &mut y);
        let mut yb = b.clone();
        vector::axpy(2.0, &a, &mut yb);
        assert_eq!(y.col(0), yb.as_slice());
    }

    #[test]
    fn fill_rows_blocked_matches_sequential() {
        let n = 2000;
        let x = MultiVector::from_columns(&[
            (0..n).map(|i| i as f64).collect::<Vec<_>>(),
            (0..n).map(|i| (i as f64) * 0.5).collect::<Vec<_>>(),
        ]);
        let mut y = MultiVector::zeros(n, 2);
        fill_rows_blocked(&mut y, true, |v, acc| {
            for (j, a) in acc.iter_mut().enumerate() {
                *a = 2.0 * x.col(j)[v] + 1.0;
            }
        });
        for j in 0..2 {
            for v in 0..n {
                assert_eq!(y.col(j)[v], 2.0 * x.col(j)[v] + 1.0);
            }
        }
    }
}
