//! # parsdd-bench
//!
//! Shared workloads and reporting helpers for the experiment benches.
//!
//! The paper is a theory paper whose "evaluation" is its set of theorem
//! statements; every bench target in `benches/` regenerates the quantity
//! one theorem bounds (see DESIGN.md §4 and EXPERIMENTS.md for the index).
//! Each bench prints a table of measured values (the reproduction of the
//! corresponding claim) and then registers criterion timing groups for the
//! work/scaling aspects.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod faults;
pub mod zoo;

/// Prints a Markdown-style table row to stderr (criterion owns stdout).
pub fn report_row(cols: &[String]) {
    eprintln!("| {} |", cols.join(" | "));
}

/// Prints a Markdown-style table header to stderr.
pub fn report_header(title: &str, cols: &[&str]) {
    eprintln!("\n### {title}");
    eprintln!("| {} |", cols.join(" | "));
    eprintln!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Formats a float compactly.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

/// The standard set of workload graphs used across the experiments.
pub mod workloads {
    use parsdd_graph::{generators, Graph};

    /// A named workload graph.
    pub struct Workload {
        /// Short name used in tables.
        pub name: &'static str,
        /// The graph.
        pub graph: Graph,
    }

    /// The small workload suite (fast; used by most benches).
    pub fn small_suite() -> Vec<Workload> {
        vec![
            Workload {
                name: "grid2d-48x48",
                graph: generators::grid2d(48, 48, |_, _| 1.0),
            },
            Workload {
                name: "grid2d-weighted",
                graph: generators::with_power_law_weights(
                    &generators::grid2d(48, 48, |_, _| 1.0),
                    4,
                    7,
                ),
            },
            Workload {
                name: "rand-regular-4",
                graph: generators::random_regular(2048, 4, 11),
            },
            Workload {
                name: "erdos-renyi",
                graph: generators::erdos_renyi_gnm(2048, 6144, 13),
            },
        ]
    }

    /// The scaling suite: the same family at growing sizes (for work/size
    /// scaling curves).
    pub fn grid_scaling_suite() -> Vec<(usize, Graph)> {
        [24usize, 48, 72, 96]
            .iter()
            .map(|&side| (side * side, generators::grid2d(side, side, |_, _| 1.0)))
            .collect()
    }

    /// Ultra-sparse graphs (tree + extra edges) for the elimination
    /// experiment.
    pub fn ultra_sparse_suite() -> Vec<(usize, usize, Graph)> {
        [(10_000usize, 50usize), (10_000, 200), (10_000, 500)]
            .iter()
            .map(|&(n, extra)| (n, extra, generators::ultra_sparse(n, extra, 1.0, 4.0, 17)))
            .collect()
    }

    /// A balanced right-hand side for a graph of `n` vertices.
    pub fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut b: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed.wrapping_add(29)) % 997) as f64) - 498.0)
            .collect();
        parsdd_linalg::vector::project_out_constant(&mut b);
        b
    }
}
