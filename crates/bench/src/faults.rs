//! Deterministic fault injection for the robustness harness.
//!
//! Every fault here is *seeded and reproducible*: a [`FaultPlan`] derives
//! its injection points from a seed with splitmix64, so a failing fault
//! case replays bit-for-bit from its plan line. The faults model the ways
//! real deployments corrupt a solve:
//!
//! * poisoned right-hand sides (NaN / ±∞ entries) — [`poison_rhs`];
//! * corrupted edge weights smuggled past validation through the
//!   unchecked graph constructor — [`corrupt_weight`];
//! * dropped bridge edges that disconnect the graph (telemetry loss,
//!   partial uploads) — [`drop_weakest_edges`];
//! * a perturbed preconditioner: the chain built from a slightly
//!   different graph than the one being solved — [`perturb_weights`];
//! * a preconditioner that returns NaN at its `k`-th application
//!   (mid-iteration hardware/kernel fault) — [`PoisonedPreconditioner`].
//!
//! `tests/faults.rs` drives every fault through the solver's fallible
//! front door and asserts the robustness contract: a typed error or a
//! tolerance-meeting recovery — never a panic, never a silently wrong
//! answer.

use std::sync::atomic::{AtomicUsize, Ordering};

use parsdd_graph::{Edge, Graph};
use parsdd_linalg::block::MultiVector;
use parsdd_linalg::operator::Preconditioner;

/// splitmix64: the standard 64-bit mix, good enough to spread injection
/// points deterministically without pulling in an RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Entry `index` of the right-hand side becomes NaN.
    NanRhs {
        /// Poisoned entry.
        index: usize,
    },
    /// Entry `index` of the right-hand side becomes +∞.
    InfRhs {
        /// Poisoned entry.
        index: usize,
    },
    /// Edge `edge`'s weight becomes `weight` (non-finite or non-positive),
    /// smuggled past construction-time validation.
    CorruptWeight {
        /// Corrupted edge id.
        edge: usize,
        /// The corrupted weight.
        weight: f64,
    },
    /// The `count` lightest edges vanish (usually the bridges, usually
    /// disconnecting the graph).
    DropWeakestEdges {
        /// How many edges to drop.
        count: usize,
    },
    /// The preconditioner is built from a graph whose weights are
    /// multiplicatively perturbed by up to ±`relative`.
    PerturbWeights {
        /// Maximum relative perturbation.
        relative: f64,
        /// Perturbation seed.
        seed: u64,
    },
    /// The preconditioner returns NaN at its `application`-th call.
    PoisonPreconditioner {
        /// 0-based application index at which the output is poisoned.
        application: usize,
    },
}

/// A deterministic, seeded list of faults for a system of `n` vertices
/// and `m` edges.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// The faults, in injection order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The standard plan: one fault of every kind, with injection points
    /// derived from `seed`. The same `(seed, n, m)` always produces the
    /// same plan.
    pub fn standard(seed: u64, n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "fault plans need a non-empty system");
        let mut s = seed;
        let faults = vec![
            Fault::NanRhs {
                index: (splitmix64(&mut s) as usize) % n,
            },
            Fault::InfRhs {
                index: (splitmix64(&mut s) as usize) % n,
            },
            Fault::CorruptWeight {
                edge: (splitmix64(&mut s) as usize) % m,
                weight: f64::NAN,
            },
            Fault::CorruptWeight {
                edge: (splitmix64(&mut s) as usize) % m,
                weight: -1.0,
            },
            Fault::DropWeakestEdges {
                count: 1 + (splitmix64(&mut s) as usize) % 3,
            },
            Fault::PerturbWeights {
                relative: 0.25,
                seed: splitmix64(&mut s),
            },
            Fault::PoisonPreconditioner {
                application: (splitmix64(&mut s) as usize) % 4,
            },
        ];
        FaultPlan { seed, faults }
    }
}

/// Returns a copy of `b` with entry `index` replaced by `value` (NaN, ±∞,
/// or any other poison).
pub fn poison_rhs(b: &[f64], index: usize, value: f64) -> Vec<f64> {
    let mut out = b.to_vec();
    out[index] = value;
    out
}

/// Returns a copy of `g` with edge `edge`'s weight replaced by `weight`,
/// built through the *unchecked* constructor so invalid weights survive to
/// whatever layer is supposed to catch them.
pub fn corrupt_weight(g: &Graph, edge: usize, weight: f64) -> Graph {
    let mut edges: Vec<Edge> = g.edges().to_vec();
    edges[edge].w = weight;
    Graph::from_edges_unchecked(g.n(), edges)
}

/// Returns a copy of `g` without its `count` lightest edges (ties broken
/// by edge id, so the result is deterministic). On bridge-bound families
/// this disconnects the graph — the solver must classify the resulting
/// per-component rank deficiency, not wedge on it.
pub fn drop_weakest_edges(g: &Graph, count: usize) -> Graph {
    let mut order: Vec<usize> = (0..g.edges().len()).collect();
    order.sort_by(|&a, &b| {
        let ea = &g.edges()[a];
        let eb = &g.edges()[b];
        ea.w.partial_cmp(&eb.w)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let dropped: std::collections::HashSet<usize> = order.into_iter().take(count).collect();
    let edges: Vec<Edge> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, e)| *e)
        .collect();
    Graph::from_edges_unchecked(g.n(), edges)
}

/// Returns a copy of `g` with every weight multiplied by a deterministic
/// factor in `[1 − relative, 1 + relative]` — the "preconditioner built
/// from yesterday's graph" fault.
pub fn perturb_weights(g: &Graph, relative: f64, seed: u64) -> Graph {
    assert!((0.0..1.0).contains(&relative));
    let mut s = seed;
    let edges: Vec<Edge> = g
        .edges()
        .iter()
        .map(|e| {
            let u01 = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
            let factor = 1.0 + relative * (2.0 * u01 - 1.0);
            Edge::new(e.u, e.v, e.w * factor)
        })
        .collect();
    Graph::from_edges_unchecked(g.n(), edges)
}

/// A preconditioner wrapper that poisons its output with NaN at its
/// `at_application`-th call (counting single-vector calls and block calls
/// alike), modelling a transient kernel/hardware fault mid-iteration. The
/// iterative drivers must detect the resulting non-finite residual and
/// freeze the affected columns with a typed reason instead of spinning.
pub struct PoisonedPreconditioner<'a> {
    inner: &'a dyn Preconditioner,
    at_application: usize,
    calls: AtomicUsize,
}

impl<'a> PoisonedPreconditioner<'a> {
    /// Wraps `inner`, poisoning the output of call number
    /// `at_application` (0-based).
    pub fn new(inner: &'a dyn Preconditioner, at_application: usize) -> Self {
        PoisonedPreconditioner {
            inner,
            at_application,
            calls: AtomicUsize::new(0),
        }
    }
}

impl Preconditioner for PoisonedPreconditioner<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn precondition(&self, r: &[f64], z: &mut [f64]) {
        self.inner.precondition(r, z);
        if self.calls.fetch_add(1, Ordering::Relaxed) == self.at_application {
            z[0] = f64::NAN;
        }
    }

    fn precondition_block(&self, r: &MultiVector, z: &mut MultiVector) {
        self.inner.precondition_block(r, z);
        if self.calls.fetch_add(1, Ordering::Relaxed) == self.at_application {
            for j in 0..z.ncols() {
                z.col_mut(j)[0] = f64::NAN;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::standard(42, 100, 250);
        let b = FaultPlan::standard(42, 100, 250);
        // NaN weights defeat PartialEq; the Debug form is the identity.
        assert_eq!(format!("{:?}", a.faults), format!("{:?}", b.faults));
        let c = FaultPlan::standard(43, 100, 250);
        assert_ne!(format!("{:?}", a.faults), format!("{:?}", c.faults));
        assert_eq!(a.faults.len(), 7);
    }

    #[test]
    fn weakest_edges_are_dropped() {
        let g = generators::near_disconnected_clusters(3, 40, 60, 1e-6, 5);
        let bridges = g.edges().iter().filter(|e| e.w == 1e-6).count();
        assert_eq!(bridges, 2);
        let cut = drop_weakest_edges(&g, 2);
        assert_eq!(cut.m(), g.m() - 2);
        assert!(cut.edges().iter().all(|e| e.w != 1e-6));
    }

    #[test]
    fn perturbation_is_bounded_and_deterministic() {
        let g = generators::grid2d(6, 6, |_, _| 2.0);
        let p1 = perturb_weights(&g, 0.25, 7);
        let p2 = perturb_weights(&g, 0.25, 7);
        for (a, b) in p1.edges().iter().zip(p2.edges()) {
            assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
        for (orig, pert) in g.edges().iter().zip(p1.edges()) {
            assert!((pert.w / orig.w - 1.0).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn poisoned_preconditioner_fires_once() {
        use parsdd_linalg::jacobi::JacobiPreconditioner;
        use parsdd_linalg::laplacian::LaplacianOp;
        let g = generators::grid2d(4, 4, |_, _| 1.0);
        let op = LaplacianOp::new(&g);
        let jac = JacobiPreconditioner::from_laplacian(&op);
        let poisoned = PoisonedPreconditioner::new(&jac, 1);
        let r = vec![1.0; g.n()];
        let mut z = vec![0.0; g.n()];
        poisoned.precondition(&r, &mut z); // call 0: clean
        assert!(z.iter().all(|v| v.is_finite()));
        poisoned.precondition(&r, &mut z); // call 1: poisoned
        assert!(z[0].is_nan());
        poisoned.precondition(&r, &mut z); // call 2: clean again
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
