//! Regenerates `BENCH_BASELINE.json`: one headline timing per experiment
//! (E1–E10, A1), each measured at 1 thread and at the widest pool, the
//! multi-RHS blocked-solve sweep (time-per-RHS at k ∈ {1, 4, 16}), the
//! workload-zoo chain-quality record (every family × tier's `ChainQuality`
//! stats and solve outcome; `--experiments zoo` selects it), the
//! mixed-precision A/B (`e15_precision`: f64 vs f32 chain storage on the
//! E8 grid and a medium zoo case), the large-scale end-to-end record
//! (`e16_scale`: a ≥10M-edge random-geometric graph through generate →
//! lean CSR → PCSR write → mmap PageRank → `build_chain` → `solve`, with
//! per-phase wall time and resident memory; `--quick` shrinks it to ~1M
//! edges), plus machine info and the default chain's per-level work and
//! residency accounting — the fixed reference point perf PRs diff
//! against.
//!
//! Usage (run with the `opt-bench` profile — or at least `--release` —
//! or the numbers are meaningless):
//!
//! ```text
//! cargo run --profile opt-bench -p parsdd_bench --bin baseline \
//!     [-- [--quick] [--threads N] [--experiments LIST] OUTPUT_PATH]
//! ```
//!
//! `--quick` takes a single timed sample per point on shrunken workloads
//! (a CI smoke mode that only proves the binary still runs end to end;
//! don't commit its output). `--threads N` overrides the wide end of the
//! thread sweep (default: all hardware threads, min 4) — the committed
//! baseline was captured on a 1-CPU container whose thread columns show
//! time-slicing, so multicore hosts should regenerate with their real
//! width on record. `--experiments LIST` (comma-separated, e.g.
//! `--experiments e8,e11`) reruns only the named experiments — short
//! prefixes (`e8`) and full names (`e8_solver_work`; `e11`/`multi_rhs`
//! select the multi-RHS sweep) both work — so a hot-path experiment can
//! be re-measured without the full ~10-minute sweep; the active filter is
//! recorded in the JSON (`"filter"`), marking the output as partial.
//!
//! Timing protocol: one warm-up run, then [`SAMPLES`] timed runs per
//! (experiment, width); the JSON records the minimum (the least-noise
//! estimator on a shared machine) and the mean. The thread sweep uses one
//! [`rayon::ThreadPool`] per width, reused across samples.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parsdd_bench::{workloads, zoo};
use parsdd_decomp::partition::partition_single_class;
use parsdd_decomp::{split_graph, PartitionParams, SplitParams};
use parsdd_graph::mst::kruskal;
use parsdd_lsst::stretch::stretch_over_tree;
use parsdd_lsst::{akpw, ls_subgraph, AkpwParams, LsSubgraphParams};
use parsdd_solver::chain::{build_chain, ChainOptions, Precision};
use parsdd_solver::elimination::greedy_elimination;
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};
use parsdd_solver::sparsify::{incremental_sparsify, SparsifyParams};

const SAMPLES: usize = 3;

/// Timed samples per (experiment, width); `SAMPLES`, or 1 with `--quick`.
static SAMPLES_PER_POINT: AtomicUsize = AtomicUsize::new(SAMPLES);

struct Measurement {
    name: &'static str,
    /// `(threads, min_ms, mean_ms)` per measured width.
    timings: Vec<(usize, f64, f64)>,
    /// Free-form quality metric pinning down *what* was computed.
    metric: String,
}

fn time_at<R>(threads: usize, mut f: impl FnMut() -> R) -> (f64, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        std::hint::black_box(f());
    });
    let samples = SAMPLES_PER_POINT.load(Ordering::Relaxed);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        pool.install(|| {
            std::hint::black_box(f());
        });
        times.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

fn measure<R>(
    name: &'static str,
    widths: &[usize],
    mut f: impl FnMut() -> R,
    metric: impl FnOnce(&R) -> String,
) -> Measurement {
    let mut timings = Vec::new();
    for &w in widths {
        let (min, mean) = time_at(w, &mut f);
        timings.push((w, min, mean));
    }
    let out = f();
    Measurement {
        name,
        timings,
        metric: metric(&out),
    }
}

/// Does `name` pass the `--experiments` filter? Matches the full
/// experiment name or its short prefix (the part before the first `_`).
fn enabled(filter: &Option<Vec<String>>, name: &str) -> bool {
    match filter {
        None => true,
        Some(keys) => {
            let short = name.split('_').next().unwrap_or(name);
            keys.iter().any(|k| k == name || k == short)
        }
    }
}

/// `measure`, gated on the experiment filter.
#[allow(clippy::too_many_arguments)]
fn measure_if<R>(
    results: &mut Vec<Measurement>,
    filter: &Option<Vec<String>>,
    name: &'static str,
    widths: &[usize],
    f: impl FnMut() -> R,
    metric: impl FnOnce(&R) -> String,
) {
    if enabled(filter, name) {
        results.push(measure(name, widths, f, metric));
    }
}

/// Non-finite f64s have no JSON encoding; emit them as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".to_string()
    }
}

fn json_f64_array(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", items.join(", "))
}

fn json_usize_array(vs: &[usize]) -> String {
    let items: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let mut quick = false;
    let mut threads_override: Option<usize> = None;
    let mut filter: Option<Vec<String>> = None;
    let mut out_path = "BENCH_BASELINE.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--threads" {
            let n: usize = args
                .next()
                .expect("--threads needs a value")
                .parse()
                .expect("--threads needs an integer");
            threads_override = Some(n.max(1));
        } else if arg == "--experiments" {
            let list = args.next().expect("--experiments needs a comma list");
            filter = Some(
                list.split(',')
                    .map(|s| s.trim().to_ascii_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect(),
            );
        } else {
            out_path = arg;
        }
    }
    if quick {
        SAMPLES_PER_POINT.store(1, Ordering::Relaxed);
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always include a ≥4-thread point so speedup-at-4 is on record even
    // when the hardware has fewer cores (the JSON carries `cpus` so the
    // reader can tell a real speedup from time-slicing); `--threads`
    // overrides both the env and the hardware default.
    let wide = threads_override.unwrap_or(hw.max(4));
    let widths = [1usize, wide];

    let grid96 = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let grid64 = parsdd_graph::generators::grid2d(64, 64, |_, _| 1.0);
    let grid48 = parsdd_graph::generators::grid2d(48, 48, |_, _| 1.0);
    let ultra = parsdd_graph::generators::ultra_sparse(10_000, 200, 1.0, 4.0, 17);
    let b96 = workloads::rhs(grid96.n(), 7);

    let mut results: Vec<Measurement> = Vec::new();

    measure_if(
        &mut results,
        &filter,
        "e1_decomposition_radius",
        &widths,
        || split_graph(&grid96, &SplitParams::new(24).with_seed(1)),
        |s| {
            format!(
                "components={} bfs_rounds={}",
                s.component_count, s.bfs_rounds_total
            )
        },
    );
    measure_if(
        &mut results,
        &filter,
        "e2_decomposition_cut",
        &widths,
        || partition_single_class(&grid64, &PartitionParams::new(24).with_seed(2)),
        |p| format!("cut_fraction={:.4}", p.max_cut_fraction()),
    );
    measure_if(
        &mut results,
        &filter,
        "e3_decomposition_scaling",
        &widths,
        || split_graph(&grid96, &SplitParams::new(24).with_seed(1)).bfs_rounds_total,
        |r| format!("bfs_rounds={r}"),
    );
    measure_if(
        &mut results,
        &filter,
        "e4_akpw_stretch",
        &widths,
        || {
            let t = akpw(&grid96, &AkpwParams::practical(16.0).with_seed(2));
            stretch_over_tree(&grid96, &t.tree_edges).average_stretch
        },
        |s| format!("avg_stretch={s:.3}"),
    );
    measure_if(
        &mut results,
        &filter,
        "e5_subgraph_tradeoff",
        &widths,
        || ls_subgraph(&grid96, &LsSubgraphParams::practical(16.0, 2).with_seed(3)),
        |s| format!("subgraph_edges={}", s.all_edges().len()),
    );
    measure_if(
        &mut results,
        &filter,
        "e6_elimination",
        &widths,
        || greedy_elimination(&ultra, 5),
        |e| format!("kept={}", e.kept.len()),
    );
    measure_if(
        &mut results,
        &filter,
        "e7_sparsify",
        &widths,
        || {
            let sub = ls_subgraph(&grid96, &LsSubgraphParams::practical(16.0, 2).with_seed(3));
            let sub_edges = sub.all_edges();
            let forest: Vec<u32> = {
                let sg = grid96.edge_subgraph(&sub_edges);
                kruskal(&sg)
                    .into_iter()
                    .map(|e| sub_edges[e as usize])
                    .collect()
            };
            incremental_sparsify(
                &grid96,
                &sub_edges,
                &forest,
                &SparsifyParams {
                    kappa: 64.0,
                    oversample: 2.0,
                    tree_scale: 1.0,
                    seed: 11,
                },
            )
        },
        |sp| format!("sparsifier_edges={}", sp.graph.m()),
    );
    measure_if(
        &mut results,
        &filter,
        "e8_solver_work",
        &widths,
        || {
            let solver =
                SddSolver::new_laplacian(&grid96, SddSolverOptions::default().with_tolerance(1e-8));
            solver.solve(&b96)
        },
        |o| {
            format!(
                "iterations={} residual={:.3e}",
                o.iterations, o.relative_residual
            )
        },
    );
    measure_if(
        &mut results,
        &filter,
        "e9_solver_scaling",
        &widths,
        || {
            // Solve only (chain prebuilt per sample set would hide the
            // dominant cost on this workload; E9's headline is the solve).
            let solver =
                SddSolver::new_laplacian(&grid96, SddSolverOptions::default().with_tolerance(1e-8));
            solver.solve(&b96).iterations
        },
        |i| format!("iterations={i}"),
    );
    measure_if(
        &mut results,
        &filter,
        "e10_applications",
        &widths,
        || {
            let solver =
                SddSolver::new_laplacian(&grid48, SddSolverOptions::default().with_tolerance(1e-6));
            parsdd_apps::electrical::electrical_flow(&grid48, &solver, 0, (grid48.n() - 1) as u32)
        },
        |f| format!("effective_resistance={:.4}", f.effective_resistance),
    );
    measure_if(
        &mut results,
        &filter,
        "a1_ablation",
        &widths,
        || build_chain(&grid96, &ChainOptions::default()),
        |c| format!("levels={}", c.stats().level_vertices.len()),
    );

    // ----- E13: parallel chain construction -----
    //
    // Build wall-clock on a grid large enough that every build stage
    // (decomposition, AKPW clustering, sparsifier sampling, eliminations,
    // bottom factorisation, Chebyshev calibration) crosses its parallel
    // cutoff. The scope-parallel build is pinned bitwise identical across
    // widths by tests/parallel.rs, so the width column here measures pure
    // runtime overhead/speedup with no quality confound. The metric also
    // times one fixed-tolerance solve on the final build: build ÷ solve is
    // the number the one-time construction cost has to amortise against.
    let (e13_side, e13_tol) = if quick { (96usize, 1e-6) } else { (200, 1e-8) };
    let g_e13 = parsdd_graph::generators::grid2d(e13_side, e13_side, |_, _| 1.0);
    let b_e13 = {
        let mut b = workloads::rhs(g_e13.n(), 9);
        let mean = b.iter().sum::<f64>() / b.len() as f64;
        b.iter_mut().for_each(|v| *v -= mean);
        b
    };
    measure_if(
        &mut results,
        &filter,
        "e13_build_chain",
        &widths,
        || build_chain(&g_e13, &ChainOptions::default()),
        |c| {
            let t0 = Instant::now();
            let outcome = c.solve(&b_e13, e13_tol, 1000);
            let solve_ms = t0.elapsed().as_secs_f64() * 1000.0;
            format!(
                "side={e13_side} levels={} solve_ms={solve_ms:.1} solve_iterations={} residual={:.3e}",
                c.depth(),
                outcome.iterations,
                outcome.relative_residual
            )
        },
    );

    // ----- Multi-RHS blocked-solve sweep -----
    //
    // The Spielman–Srivastava effective-resistance workload: many
    // projection right-hand sides against one prebuilt chain, solved in
    // blocks of k. Time-per-RHS is the headline — blocking amortises every
    // chain level's matrix stream over the block, which is memory-bound
    // amortisation and therefore measurable even at 1 thread on 1 CPU
    // (the sweep runs on a 1-wide pool; thread scaling is the other
    // experiments' job). The acceptance bar of the blocked-solve refactor:
    // per-RHS time at k = 16 at most half the k = 1 time.
    let (mr_side, mr_rhs) = if quick { (60usize, 8usize) } else { (120, 16) };
    let mr_grid = parsdd_graph::generators::grid2d(mr_side, mr_side, |_, _| 1.0);
    let mr_points: Option<Vec<(usize, f64, f64)>> = (enabled(&filter, "e11_multi_rhs")
        || enabled(&filter, "multi_rhs"))
    .then(|| {
        let solver =
            SddSolver::new_laplacian(&mr_grid, SddSolverOptions::default().with_tolerance(1e-8));
        let n = mr_grid.n();
        let rhs: Vec<Vec<f64>> = (0..mr_rhs)
            .map(|p| {
                let mut y = vec![0.0f64; n];
                for (id, e) in mr_grid.edges().iter().enumerate() {
                    let coin = parsdd_solver::sparsify::counter_coin(
                        0x55ab_0001 ^ (p as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
                        id as u64,
                    );
                    let s = if coin < 0.5 { 1.0 } else { -1.0 };
                    let w = e.w.sqrt() * s;
                    y[e.u as usize] += w;
                    y[e.v as usize] -= w;
                }
                y
            })
            .collect();
        [1usize, 4, 16]
            .iter()
            .map(|&k| {
                let (min, mean) = time_at(1, || {
                    for chunk in rhs.chunks(k) {
                        std::hint::black_box(solver.solve_many(chunk));
                    }
                });
                eprintln!(
                    "multi_rhs k={k:2}  total {min:9.1} ms  per-rhs {:9.1} ms",
                    min / mr_rhs as f64
                );
                (k, min, mean)
            })
            .collect()
    });

    // ----- Workload-zoo chain-quality record -----
    //
    // Not a timing experiment: for every zoo family × tier, the solved
    // chain's quality report and solve outcome — the reference numbers the
    // conformance envelopes in tests/zoo.rs were pinned from. `--quick`
    // runs only the small tier (the CI smoke); the committed baseline
    // carries all three.
    struct ZooRecord {
        family: &'static str,
        tier: &'static str,
        vertices: usize,
        edges: usize,
        build_solve_ms: f64,
        run: zoo::ZooRun,
    }
    let zoo_records: Option<Vec<ZooRecord>> = enabled(&filter, "zoo").then(|| {
        let tiers: &[zoo::Tier] = if quick {
            &[zoo::Tier::Small]
        } else {
            &zoo::Tier::ALL
        };
        let mut records = Vec::new();
        for &family in zoo::FAMILIES {
            for &tier in tiers {
                let g = zoo::build(family, tier);
                let t0 = Instant::now();
                let run = zoo::run(&g, zoo::chain_options(family, tier), 1e-8);
                let build_solve_ms = t0.elapsed().as_secs_f64() * 1000.0;
                eprintln!(
                    "zoo {family:>10}/{:6}  n={:6} m={:7}  it={:3} res={:.2e}  {}",
                    tier.name(),
                    g.n(),
                    g.m(),
                    run.iterations,
                    run.relative_residual,
                    run.quality.summary()
                );
                records.push(ZooRecord {
                    family,
                    tier: tier.name(),
                    vertices: g.n(),
                    edges: g.m(),
                    build_solve_ms,
                    run,
                });
            }
        }
        records
    });

    // ----- E15: mixed-precision chain storage A/B -----
    //
    // f64 vs f32 chain storage (`ChainOptions::precision`) on the E8
    // workload and a medium zoo case: per-solve wall-clock at 1 thread
    // against a prebuilt chain, the outer iteration count and final
    // residual at tol 1e-8, and the chain's resident/streamed bytes.
    // The knob's acceptance bars — f32 ≥ 20% faster per solve on the e8
    // grid, per-level residency ≤ 0.55× — are pinned by
    // tests/precision.rs; this record is the committed measurement.
    struct PrecisionPoint {
        precision: &'static str,
        solve_min_ms: f64,
        solve_mean_ms: f64,
        iterations: usize,
        relative_residual: f64,
        resident_bytes: usize,
        streamed_bytes_per_application: f64,
    }
    struct PrecisionRecord {
        case: String,
        vertices: usize,
        edges: usize,
        points: Vec<PrecisionPoint>,
    }
    let e15_records: Option<Vec<PrecisionRecord>> = enabled(&filter, "e15_precision").then(|| {
        let rmat_tier = if quick {
            zoo::Tier::Small
        } else {
            zoo::Tier::Medium
        };
        let cases: Vec<(String, parsdd_graph::Graph, ChainOptions)> = vec![
            (
                "grid2d_96x96".to_string(),
                parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0),
                ChainOptions::default(),
            ),
            (
                format!("rmat_{}", rmat_tier.name()),
                zoo::build("rmat", rmat_tier),
                zoo::chain_options("rmat", rmat_tier),
            ),
        ];
        let mut records = Vec::new();
        for (case, g, opts) in cases {
            let b = {
                let mut b = workloads::rhs(g.n(), 21);
                let mean = b.iter().sum::<f64>() / b.len() as f64;
                b.iter_mut().for_each(|v| *v -= mean);
                b
            };
            let mut points = Vec::new();
            for precision in [Precision::F64, Precision::F32] {
                let chain = build_chain(&g, &opts.with_precision(precision));
                let (min, mean) = time_at(1, || chain.solve(&b, 1e-8, 1000));
                let out = chain.solve(&b, 1e-8, 1000);
                let stats = chain.stats();
                eprintln!(
                    "e15 {case:>14} {precision:?}: solve {min:8.1} ms  it={:3} \
                     res={:.2e}  resident {:9} B  streamed {:.3e} B/app",
                    out.iterations,
                    out.relative_residual,
                    stats.resident_bytes,
                    stats.streamed_bytes_per_application
                );
                points.push(PrecisionPoint {
                    precision: match precision {
                        Precision::F64 => "f64",
                        Precision::F32 => "f32",
                    },
                    solve_min_ms: min,
                    solve_mean_ms: mean,
                    iterations: out.iterations,
                    relative_residual: out.relative_residual,
                    resident_bytes: stats.resident_bytes,
                    streamed_bytes_per_application: stats.streamed_bytes_per_application,
                });
            }
            records.push(PrecisionRecord {
                case,
                vertices: g.n(),
                edges: g.m(),
                points,
            });
        }
        records
    });

    // ----- E16: large-scale end-to-end (per-phase time + resident memory)
    //
    // One graph at committed scale (≥10M edges full, ~1M edges --quick)
    // driven through every layer the scale refactor touched: the
    // counter-RNG generator, the lean CSR, the PCSR binary writer, the
    // zero-copy mmap view feeding an `edge_map` workload (PageRank), and
    // finally `build_chain` + `solve`. Each phase records wall time and
    // the VmRSS high-water reading right after it, so the memory story
    // (flat SoA arrays, dropped per-level graphs, streamed loaders) is a
    // committed measurement rather than a claim.
    struct ScalePhase {
        name: &'static str,
        ms: f64,
        rss_bytes: u64,
    }
    struct ScaleRecord {
        workload: String,
        vertices: usize,
        edges: usize,
        phases: Vec<ScalePhase>,
        iterations: usize,
        relative_residual: f64,
        converged: bool,
        pagerank_iterations: usize,
        graph_bytes_per_edge: f64,
        csr_bytes_per_edge: f64,
        csr_over_graph: f64,
    }
    /// Current resident set in bytes, from `/proc/self/status` (0 when
    /// the platform has no procfs).
    fn rss_bytes() -> u64 {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines().find(|l| l.starts_with("VmRSS:")).and_then(|l| {
                    l.split_whitespace()
                        .nth(1)
                        .and_then(|kb| kb.parse::<u64>().ok())
                })
            })
            .map(|kb| kb * 1024)
            .unwrap_or(0)
    }
    let e16_record: Option<ScaleRecord> = enabled(&filter, "e16_scale").then(|| {
        // Random-geometric at average degree 8 ⇒ m ≈ 4n (boundary cells
        // shave ~0.2%); 2.6M vertices lands safely above the 10M-edge
        // acceptance floor.
        let n: usize = if quick { 250_000 } else { 2_600_000 };
        let mut phases: Vec<ScalePhase> = Vec::new();
        let timed = |name: &'static str, phases: &mut Vec<ScalePhase>, f: &mut dyn FnMut()| {
            let t0 = Instant::now();
            f();
            phases.push(ScalePhase {
                name,
                ms: t0.elapsed().as_secs_f64() * 1000.0,
                rss_bytes: rss_bytes(),
            });
        };
        let mut g_opt: Option<parsdd_graph::Graph> = None;
        timed("generate", &mut phases, &mut || {
            g_opt = Some(parsdd_graph::generators::random_geometric(n, 8.0, 16));
        });
        let g = g_opt.expect("generated");
        let mut csr_opt: Option<parsdd_graph::Csr> = None;
        timed("lean_csr", &mut phases, &mut || {
            csr_opt = Some(parsdd_graph::Csr::from_graph(&g));
        });
        let csr = csr_opt.expect("csr");
        let graph_bpe = g.resident_bytes() as f64 / g.m().max(1) as f64;
        let csr_bpe = csr.bytes_per_edge();
        let pcsr_path = std::env::temp_dir().join(format!("parsdd_e16_{n}.pcsr"));
        timed("pcsr_write", &mut phases, &mut || {
            parsdd_graph::io::write_binary_csr_file(&csr, &pcsr_path).expect("pcsr write");
        });
        // PageRank over the zero-copy mmap view: the whole edge_map
        // traversal layer exercised off-heap. Fixed 5 iterations — this
        // phase times the SpMV sweeps, not convergence.
        let mut pagerank_iterations = 0usize;
        #[cfg(all(unix, target_endian = "little"))]
        timed("mmap_pagerank", &mut phases, &mut || {
            let mapped = parsdd_graph::MappedCsr::open(&pcsr_path).expect("mmap");
            let pr = parsdd_apps::pagerank(&mapped, 0.85, 0.0, 5);
            pagerank_iterations = pr.iterations;
        });
        #[cfg(not(all(unix, target_endian = "little")))]
        timed("streamed_pagerank", &mut phases, &mut || {
            let c = parsdd_graph::io::read_binary_csr_file(&pcsr_path).expect("pcsr read");
            let pr = parsdd_apps::pagerank(&c, 0.85, 0.0, 5);
            pagerank_iterations = pr.iterations;
        });
        let _ = std::fs::remove_file(&pcsr_path);
        drop(csr);
        let mut chain_opt = None;
        timed("chain_build", &mut phases, &mut || {
            chain_opt = Some(build_chain(&g, &ChainOptions::default()));
        });
        let chain = chain_opt.expect("chain");
        let b = {
            let mut b = workloads::rhs(g.n(), 33);
            let mean = b.iter().sum::<f64>() / b.len() as f64;
            b.iter_mut().for_each(|v| *v -= mean);
            b
        };
        let mut out_opt = None;
        timed("solve", &mut phases, &mut || {
            out_opt = Some(chain.solve(&b, 1e-8, 1000));
        });
        let out = out_opt.expect("solved");
        for p in &phases {
            eprintln!(
                "e16 {:>16}: {:10.1} ms  rss {:7.1} MiB",
                p.name,
                p.ms,
                p.rss_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        eprintln!(
            "e16 solve: it={} res={:.3e} converged={}  bytes/edge graph {:.1} csr {:.1}",
            out.iterations, out.relative_residual, out.converged, graph_bpe, csr_bpe
        );
        ScaleRecord {
            workload: format!("random_geometric n={n} avg_degree=8 seed=16"),
            vertices: g.n(),
            edges: g.m(),
            phases,
            iterations: out.iterations,
            relative_residual: out.relative_residual,
            converged: out.converged,
            pagerank_iterations,
            graph_bytes_per_edge: graph_bpe,
            csr_bytes_per_edge: csr_bpe,
            csr_over_graph: csr_bpe / graph_bpe,
        }
    });

    // ----- JSON (hand-rolled; the workspace has no serde) -----
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"parsdd-bench-baseline-v9\",");
    // Committed baselines are currently produced on a 1-CPU container:
    // there the tN column measures scheduler overhead under time-slicing,
    // not parallel speedup — read it against machine.cpus.
    let _ = writeln!(
        json,
        "  \"note\": \"when machine.cpus == 1 the tN columns are time-sliced on one core; \
         they bound scheduling overhead and say nothing about speedup\","
    );
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --profile opt-bench -p parsdd_bench --bin baseline\","
    );
    // The active --experiments filter, if any: a non-null value marks this
    // file as a partial rerun that should not be committed wholesale.
    let _ = writeln!(
        json,
        "  \"filter\": {},",
        match &filter {
            None => "null".to_string(),
            Some(keys) => format!("\"{}\"", keys.join(",")),
        }
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{ \"cpus\": {hw}, \"os\": \"{}\", \"arch\": \"{}\", \"profile\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH,
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    let _ = writeln!(json, "  \"samples_per_point\": {SAMPLES},");
    let _ = writeln!(json, "  \"thread_widths\": [1, {wide}],");
    json.push_str("  \"experiments\": [\n");
    for (i, m) in results.iter().enumerate() {
        let t1 = m.timings.first().expect("width 1 timing");
        let tn = m.timings.last().expect("wide timing");
        let speedup = t1.1 / tn.1;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(json, "      \"metric\": \"{}\",", m.metric);
        let _ = writeln!(
            json,
            "      \"t1\": {{ \"threads\": {}, \"min_ms\": {:.3}, \"mean_ms\": {:.3} }},",
            t1.0, t1.1, t1.2
        );
        let _ = writeln!(
            json,
            "      \"tN\": {{ \"threads\": {}, \"min_ms\": {:.3}, \"mean_ms\": {:.3} }},",
            tn.0, tn.1, tn.2
        );
        let _ = writeln!(json, "      \"speedup_min\": {speedup:.3}");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
        eprintln!(
            "{:28} 1t {:9.2} ms | {}t {:9.2} ms | speedup {:.2}x | {}",
            m.name, t1.1, tn.0, tn.1, speedup, m.metric
        );
    }
    json.push_str("  ],\n");

    // Multi-RHS sweep: time-per-RHS as a function of the block width k
    // (null when the --experiments filter skipped it).
    if let Some(mr_points) = &mr_points {
        json.push_str("  \"multi_rhs\": {\n");
        let _ = writeln!(
            json,
            "    \"workload\": \"grid2d {mr_side}x{mr_side} unit weights, {mr_rhs} Spielman-Srivastava projection rhs, tol 1e-8\","
        );
        let _ = writeln!(json, "    \"num_rhs\": {mr_rhs},");
        let _ = writeln!(json, "    \"threads\": 1,");
        json.push_str("    \"points\": [\n");
        for (i, &(k, min, mean)) in mr_points.iter().enumerate() {
            let _ = writeln!(
                json,
                "      {{ \"k\": {k}, \"min_ms\": {:.3}, \"mean_ms\": {:.3}, \"ms_per_rhs\": {:.3} }}{}",
                min,
                mean,
                min / mr_rhs as f64,
                if i + 1 < mr_points.len() { "," } else { "" }
            );
        }
        json.push_str("    ],\n");
        let per_rhs_k1 = mr_points
            .first()
            .map(|&(_, min, _)| min)
            .unwrap_or(f64::NAN);
        let per_rhs_k16 = mr_points.last().map(|&(_, min, _)| min).unwrap_or(f64::NAN);
        let _ = writeln!(
            json,
            "    \"per_rhs_ratio_k16_vs_k1\": {}",
            json_f64(per_rhs_k16 / per_rhs_k1)
        );
        json.push_str("  },\n");
    } else {
        json.push_str("  \"multi_rhs\": null,\n");
    }

    // Workload-zoo chain-quality stats (null when the --experiments
    // filter skipped the zoo).
    if let Some(records) = &zoo_records {
        json.push_str("  \"zoo\": [\n");
        for (i, r) in records.iter().enumerate() {
            let q = &r.run.quality;
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"family\": \"{}\",", r.family);
            let _ = writeln!(json, "      \"tier\": \"{}\",", r.tier);
            let _ = writeln!(json, "      \"vertices\": {},", r.vertices);
            let _ = writeln!(json, "      \"edges\": {},", r.edges);
            let _ = writeln!(json, "      \"iterations\": {},", r.run.iterations);
            let _ = writeln!(
                json,
                "      \"relative_residual\": {},",
                json_f64(r.run.relative_residual)
            );
            let _ = writeln!(json, "      \"converged\": {},", r.run.converged);
            let _ = writeln!(
                json,
                "      \"breakdown\": {},",
                match &r.run.breakdown {
                    None => "null".to_string(),
                    Some(b) => format!("\"{b}\""),
                }
            );
            let _ = writeln!(json, "      \"stalled\": {},", r.run.stalled);
            let _ = writeln!(json, "      \"depth\": {},", q.depth);
            let _ = writeln!(json, "      \"bottom_vertices\": {},", q.bottom_vertices);
            let _ = writeln!(json, "      \"direct_bottom\": {},", q.direct_bottom);
            let _ = writeln!(
                json,
                "      \"work_per_application\": {},",
                json_f64(q.work_per_application)
            );
            let _ = writeln!(
                json,
                "      \"work_per_input_edge\": {},",
                json_f64(q.work_per_input_edge)
            );
            let _ = writeln!(
                json,
                "      \"recursion_leaves\": {},",
                json_f64(q.recursion_leaves)
            );
            let _ = writeln!(
                json,
                "      \"max_kappa_eff\": {},",
                json_f64(q.max_kappa_eff())
            );
            let _ = writeln!(json, "      \"kappa_clamp_hits\": {},", q.kappa_clamp_hits);
            let _ = writeln!(json, "      \"build_solve_ms\": {:.3}", r.build_solve_ms);
            let _ = writeln!(
                json,
                "    }}{}",
                if i + 1 < records.len() { "," } else { "" }
            );
        }
        json.push_str("  ],\n");
    } else {
        json.push_str("  \"zoo\": null,\n");
    }

    // Mixed-precision A/B (null when the --experiments filter skipped
    // it): the headline ratios are derived in place so the acceptance
    // bars can be read off without arithmetic.
    if let Some(records) = &e15_records {
        json.push_str("  \"e15_precision\": [\n");
        for (i, r) in records.iter().enumerate() {
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"case\": \"{}\",", r.case);
            let _ = writeln!(json, "      \"vertices\": {},", r.vertices);
            let _ = writeln!(json, "      \"edges\": {},", r.edges);
            json.push_str("      \"points\": [\n");
            for (j, p) in r.points.iter().enumerate() {
                let _ = writeln!(
                    json,
                    "        {{ \"precision\": \"{}\", \"solve_min_ms\": {:.3}, \
                     \"solve_mean_ms\": {:.3}, \"iterations\": {}, \
                     \"relative_residual\": {}, \"resident_bytes\": {}, \
                     \"streamed_bytes_per_application\": {} }}{}",
                    p.precision,
                    p.solve_min_ms,
                    p.solve_mean_ms,
                    p.iterations,
                    json_f64(p.relative_residual),
                    p.resident_bytes,
                    json_f64(p.streamed_bytes_per_application),
                    if j + 1 < r.points.len() { "," } else { "" }
                );
            }
            json.push_str("      ],\n");
            let f64_pt = &r.points[0];
            let f32_pt = &r.points[1];
            let _ = writeln!(
                json,
                "      \"solve_speedup_f32\": {},",
                json_f64(f64_pt.solve_min_ms / f32_pt.solve_min_ms)
            );
            let _ = writeln!(
                json,
                "      \"resident_ratio_f32\": {}",
                json_f64(f32_pt.resident_bytes as f64 / f64_pt.resident_bytes as f64)
            );
            let _ = writeln!(
                json,
                "    }}{}",
                if i + 1 < records.len() { "," } else { "" }
            );
        }
        json.push_str("  ],\n");
    } else {
        json.push_str("  \"e15_precision\": null,\n");
    }

    // Scale demonstration (null when the --experiments filter skipped
    // it): per-phase wall time + resident memory of the ≥10M-edge
    // end-to-end run, plus the CSR-vs-Graph bytes-per-edge ratio the
    // refactor's ≤ 0.75× acceptance bar reads off.
    if let Some(r) = &e16_record {
        json.push_str("  \"e16_scale\": {\n");
        let _ = writeln!(json, "    \"workload\": \"{}\",", r.workload);
        let _ = writeln!(json, "    \"vertices\": {},", r.vertices);
        let _ = writeln!(json, "    \"edges\": {},", r.edges);
        json.push_str("    \"phases\": [\n");
        for (i, p) in r.phases.iter().enumerate() {
            let _ = writeln!(
                json,
                "      {{ \"name\": \"{}\", \"ms\": {:.3}, \"rss_bytes\": {} }}{}",
                p.name,
                p.ms,
                p.rss_bytes,
                if i + 1 < r.phases.len() { "," } else { "" }
            );
        }
        json.push_str("    ],\n");
        let _ = writeln!(json, "    \"solve_iterations\": {},", r.iterations);
        let _ = writeln!(
            json,
            "    \"relative_residual\": {},",
            json_f64(r.relative_residual)
        );
        let _ = writeln!(json, "    \"converged\": {},", r.converged);
        let _ = writeln!(
            json,
            "    \"pagerank_iterations\": {},",
            r.pagerank_iterations
        );
        let _ = writeln!(
            json,
            "    \"graph_bytes_per_edge\": {},",
            json_f64(r.graph_bytes_per_edge)
        );
        let _ = writeln!(
            json,
            "    \"csr_bytes_per_edge\": {},",
            json_f64(r.csr_bytes_per_edge)
        );
        let _ = writeln!(
            json,
            "    \"csr_over_graph\": {}",
            json_f64(r.csr_over_graph)
        );
        json.push_str("  },\n");
    } else {
        json.push_str("  \"e16_scale\": null,\n");
    }

    // Per-level work balance of the default chain on the E8/E9 workload
    // (the quantity the deep-chain refactor optimises): future PRs diff
    // these arrays to see where the W-cycle spends its flops, not just how
    // long the wall clock ran.
    let chain = build_chain(&grid96, &ChainOptions::default());
    let stats = chain.stats();
    json.push_str("  \"chain\": {\n");
    let _ = writeln!(json, "    \"workload\": \"grid2d 96x96 unit weights\",");
    let _ = writeln!(json, "    \"depth\": {},", chain.depth());
    let _ = writeln!(
        json,
        "    \"level_vertices\": {},",
        json_usize_array(&stats.level_vertices)
    );
    let _ = writeln!(
        json,
        "    \"level_edges\": {},",
        json_usize_array(&stats.level_edges)
    );
    let _ = writeln!(
        json,
        "    \"sparsifier_edges\": {},",
        json_usize_array(&stats.sparsifier_edges)
    );
    let _ = writeln!(json, "    \"kappas\": {},", json_f64_array(&stats.kappas));
    let _ = writeln!(
        json,
        "    \"tree_scales\": {},",
        json_f64_array(&stats.tree_scales)
    );
    let _ = writeln!(
        json,
        "    \"kappa_eff\": {},",
        json_f64_array(&stats.kappa_eff)
    );
    let _ = writeln!(
        json,
        "    \"inner_iterations\": {},",
        json_usize_array(&stats.inner_iterations)
    );
    let _ = writeln!(
        json,
        "    \"level_applications\": {},",
        json_f64_array(&stats.level_applications)
    );
    let _ = writeln!(
        json,
        "    \"level_work\": {},",
        json_f64_array(&stats.level_work)
    );
    let _ = writeln!(
        json,
        "    \"level_resident_bytes\": {},",
        json_usize_array(&stats.level_resident_bytes)
    );
    let _ = writeln!(json, "    \"resident_bytes\": {},", stats.resident_bytes);
    let _ = writeln!(
        json,
        "    \"streamed_bytes_per_application\": {},",
        json_f64(stats.streamed_bytes_per_application)
    );
    let _ = writeln!(
        json,
        "    \"work_per_application\": {},",
        json_f64(stats.work_per_application)
    );
    let _ = writeln!(
        json,
        "    \"recursion_leaves\": {},",
        json_f64(stats.recursion_leaves)
    );
    let _ = writeln!(json, "    \"direct_bottom\": {},", stats.direct_bottom);
    let _ = writeln!(
        json,
        "    \"bottom_envelope_nnz\": {}",
        stats.bottom_envelope_nnz
    );
    json.push_str("  }\n}\n");
    eprintln!(
        "chain: depth={} k={:?} work/app={:.3e} leaves={}",
        chain.depth(),
        stats.inner_iterations,
        stats.work_per_application,
        stats.recursion_leaves
    );

    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path} (cpus={hw}, wide width={wide})");
}
