//! Workload zoo: the family × size-tier registry shared by the
//! conformance harness (`tests/zoo.rs`) and the `zoo` baseline experiment.
//!
//! Every e-series bench historically ran on 2D grids — the friendliest
//! possible SDD instance — so the pipeline's defaults were tuned on exactly
//! one graph family. The zoo pins five structurally different families
//! (power-law, small-world/expander, road-like skewed planar, 3D lattice,
//! and near-disconnected clusters) at three size tiers each, with a single
//! entry point that builds the graph and one that solves it and returns the
//! chain-quality report. All generators are seeded and sequential, so every
//! case is bitwise-identical across thread counts and runs.

use parsdd_graph::{generators, Graph};
use parsdd_solver::{ChainOptions, ChainQuality, SddSolver, SddSolverOptions};

/// Size tier of a zoo case. `Small` is cheap enough for debug-mode test
/// runs; `Medium`/`Large` are `#[ignore]`d by the conformance tests and run
/// in the release `deep-chain` CI job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Hundreds to ~2k vertices — runs everywhere, including debug tests.
    Small,
    /// Thousands to ~10k vertices — release-mode territory.
    Medium,
    /// Tens of thousands of vertices — the deep-chain job's tier.
    Large,
}

impl Tier {
    /// All tiers, smallest first.
    pub const ALL: [Tier; 3] = [Tier::Small, Tier::Medium, Tier::Large];

    /// Short name used in tables and baseline keys.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Small => "small",
            Tier::Medium => "medium",
            Tier::Large => "large",
        }
    }
}

/// The five zoo families. `barbell` is the near-disconnected-clusters
/// family that stresses the sparsifier's κ clamps.
pub const FAMILIES: &[&str] = &["rmat", "smallworld", "road", "lattice3d", "barbell"];

/// Builds the zoo graph for `family` at `tier`. Panics on an unknown
/// family name (the registry is a closed set).
pub fn build(family: &str, tier: Tier) -> Graph {
    match (family, tier) {
        // rMAT power-law: skewed degrees, low diameter, giant component.
        ("rmat", Tier::Small) => generators::rmat(9, 4_096, 0x2001),
        ("rmat", Tier::Medium) => generators::rmat(12, 32_768, 0x2001),
        ("rmat", Tier::Large) => generators::rmat(14, 131_072, 0x2001),
        // Watts–Strogatz small-world: ring lattice + rewired shortcuts —
        // expander-like once beta is non-trivial.
        ("smallworld", Tier::Small) => generators::watts_strogatz(1_500, 6, 0.1, 0x2002),
        ("smallworld", Tier::Medium) => generators::watts_strogatz(10_000, 8, 0.1, 0x2002),
        ("smallworld", Tier::Large) => generators::watts_strogatz(40_000, 10, 0.1, 0x2002),
        // Road-like mesh: planar, high diameter, log-normal skewed weights.
        ("road", Tier::Small) => generators::road_mesh(40, 40, 0.6, 1.0, 0x2003),
        ("road", Tier::Medium) => generators::road_mesh(120, 120, 0.6, 1.2, 0x2003),
        ("road", Tier::Large) => generators::road_mesh(250, 250, 0.6, 1.2, 0x2003),
        // 3D lattice: the grid family one dimension up — a denser
        // per-vertex stencil than 2D. The weight spread stays within one
        // z=32 bucket: multi-decade spreads are the road family's job, and
        // on a 3D stencil they drive the chain into slow shrink with
        // W-cycle leaf blowup (thousands of ×m per application). The
        // large tier runs the adaptive schedule — see [`chain_options`].
        ("lattice3d", Tier::Small) => generators::lattice3d(10, 10, 8, 4.0, 0x2004),
        ("lattice3d", Tier::Medium) => generators::lattice3d(20, 20, 20, 4.0, 0x2004),
        ("lattice3d", Tier::Large) => generators::lattice3d(32, 32, 32, 4.0, 0x2004),
        // Barbell / near-disconnected clusters: feeble bridges collapse
        // the Fiedler value and light intra-cluster extras starve the
        // sampler's stretch budget into its κ floor clamp. Bridge weights
        // stay ≥ 1e-5 — the f64-attainable relative residual is ≈ ε·κ(A),
        // so weaker bridges put the 1e-8 tolerance out of reach of *any*
        // double-precision solver (the stall detector would stop early).
        ("barbell", Tier::Small) => {
            generators::near_disconnected_clusters(3, 150, 300, 1e-3, 0x2005)
        }
        ("barbell", Tier::Medium) => {
            generators::near_disconnected_clusters(4, 800, 1_600, 1e-4, 0x2005)
        }
        ("barbell", Tier::Large) => {
            generators::near_disconnected_clusters(6, 3_000, 6_000, 1e-5, 0x2005)
        }
        _ => panic!("unknown zoo family {family:?}"),
    }
}

/// Chain options for a zoo case: `ChainOptions::default()` everywhere
/// except the large 3D lattice, which runs the adaptive per-level
/// schedule. The fixed grid-tuned schedule recurses at shrink ≈ 1.3–1.6
/// with 4 inner iterations per level on big 3D stencils, so the W-cycle
/// leaf count blows up exponentially — measured 56 496×m per application
/// at 24³ and 75 951×m at 32³ (depth 9–10, 65k–262k recursion leaves).
/// The adaptive schedule derives the level's tree scale and sample budget
/// from its measured stretch and produces one genuinely sparsifying level
/// over an iterative bottom (≈3 200×m at 32³) — the case the adaptive
/// selection exists for, pinned here so it cannot rot.
pub fn chain_options(family: &str, tier: Tier) -> ChainOptions {
    let mut options = match (family, tier) {
        ("lattice3d", Tier::Large) => ChainOptions::default().with_adaptive(),
        _ => ChainOptions::default(),
    };
    // CI hook: the thread-matrix job re-runs the zoo small suite with
    // `PARSDD_PRECISION=f32` so the mixed-precision tier is conformance-
    // tested against the same envelopes as the default path.
    if let Some(p) = parsdd_solver::chain::Precision::from_env() {
        options.precision = p;
    }
    options
}

/// Result of solving one zoo case: the chain-quality report plus the
/// outer-solve outcome the conformance tests assert on.
#[derive(Debug, Clone)]
pub struct ZooRun {
    /// Chain-quality conformance report of the built chain.
    pub quality: ChainQuality,
    /// Outer PCG iterations of the solve.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖₂ / ‖b‖₂`.
    pub relative_residual: f64,
    /// Whether the requested tolerance was reached.
    pub converged: bool,
    /// Typed breakdown of the outer iteration, if it froze early
    /// (`Display`-formatted; `None` when converged or budget-exhausted).
    pub breakdown: Option<String>,
    /// Whether the breakdown (if any) was a stall at the f64-attainable
    /// accuracy floor — the expected outcome on the feeblest barbell
    /// bridges, surfaced separately so baseline diffs can tell an
    /// accuracy-floor stall from a genuine divergence.
    pub stalled: bool,
}

/// Builds the chain for `g` under `options` (use [`chain_options`] for
/// the registry's per-case choice), solves one deterministic balanced
/// right-hand side to `tolerance`, and returns the quality report plus the
/// solve outcome.
pub fn run(g: &Graph, options: ChainOptions, tolerance: f64) -> ZooRun {
    let mut solver_options = SddSolverOptions::default().with_tolerance(tolerance);
    solver_options.chain = options;
    let solver = SddSolver::new_laplacian(g, solver_options);
    let b = crate::workloads::rhs(g.n(), 7);
    let out = solver.solve(&b);
    let stalled = matches!(
        out.breakdown,
        Some(parsdd_linalg::BreakdownReason::Stalled { .. })
    );
    ZooRun {
        quality: solver.chain().quality(),
        iterations: out.iterations,
        relative_residual: out.relative_residual,
        converged: out.converged,
        breakdown: out.breakdown.map(|b| b.to_string()),
        stalled,
    }
}
