//! E11 — blocked multi-RHS solves: time-per-RHS of `SddSolver::solve_many`
//! as a function of the block width k, on the Spielman–Srivastava
//! effective-resistance workload (many random-projection right-hand sides
//! against one prebuilt chain).
//!
//! Blocking amortises every chain level's matrix stream — CSR adjacency,
//! elimination trace, dense bottom factor — over the block, so per-RHS
//! time should drop monotonically with k even at one thread. The committed
//! acceptance point (k = 16 at most half the k = 1 per-RHS time on the
//! 120×120 grid) is recorded by the `baseline` binary; this bench sweeps
//! the same shape at a criterion-friendly size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_bench::{fmt, report_header, report_row};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};
use parsdd_solver::sparsify::counter_coin;

const TOL: f64 = 1e-8;
const NUM_RHS: usize = 16;

/// The Spielman–Srivastava projection right-hand sides `Bᵀ W^{1/2} q_p`
/// with counter-based ±1 coins (the resistance estimator's batch shape).
fn projection_rhs(g: &parsdd_graph::Graph, num: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..num)
        .map(|p| {
            let mut y = vec![0.0f64; g.n()];
            for (id, e) in g.edges().iter().enumerate() {
                let coin = counter_coin(
                    seed ^ (p as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
                    id as u64,
                );
                let s = if coin < 0.5 { 1.0 } else { -1.0 };
                let w = e.w.sqrt() * s;
                y[e.u as usize] += w;
                y[e.v as usize] -= w;
            }
            y
        })
        .collect()
}

fn quality_table() {
    report_header(
        "E11: time-per-RHS vs block width (grid, SS projection rhs, eps = 1e-8)",
        &["side", "n", "k", "total (ms)", "per-rhs (ms)", "vs k=1"],
    );
    for side in [48usize, 72] {
        let g = parsdd_graph::generators::grid2d(side, side, |_, _| 1.0);
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(TOL));
        let rhs = projection_rhs(&g, NUM_RHS, 0xe11);
        let mut per_rhs_k1 = f64::NAN;
        for k in [1usize, 4, 16] {
            let t0 = Instant::now();
            for chunk in rhs.chunks(k) {
                black_box(solver.solve_many(chunk));
            }
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            let per = ms / NUM_RHS as f64;
            if k == 1 {
                per_rhs_k1 = per;
            }
            report_row(&[
                side.to_string(),
                g.n().to_string(),
                k.to_string(),
                fmt(ms),
                fmt(per),
                format!("{:.2}x", per_rhs_k1 / per),
            ]);
        }
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let g = parsdd_graph::generators::grid2d(48, 48, |_, _| 1.0);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(TOL));
    let rhs = projection_rhs(&g, NUM_RHS, 0xe11);
    let mut group = c.benchmark_group("e11_multi_rhs");
    group.sample_size(10);
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("solve_many_grid48", k), &k, |bch, &k| {
            bch.iter(|| {
                let mut converged = 0usize;
                for chunk in rhs.chunks(k) {
                    converged += solver
                        .solve_many(chunk)
                        .iter()
                        .filter(|o| o.converged)
                        .count();
                }
                black_box(converged)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
