//! E6 — Lemma 6.5: greedy elimination reduces a graph with `n` vertices and
//! `n−1+j` edges to at most `2j−2` vertices, in O(log n) randomized rounds.
//!
//! Reports, for ultra-sparse graphs with varying numbers of extra edges,
//! the reduced vertex count against the `2j` bound and the number of
//! elimination rounds against `log n`, plus elimination throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_solver::elimination::greedy_elimination;

fn quality_table() {
    report_header(
        "E6: greedy elimination on ultra-sparse graphs (Lemma 6.5)",
        &[
            "n",
            "extra edges j",
            "reduced vertices",
            "bound 2j",
            "rounds",
            "log2 n",
        ],
    );
    for (n, extra, g) in workloads::ultra_sparse_suite() {
        let elim = greedy_elimination(&g, 7);
        report_row(&[
            n.to_string(),
            extra.to_string(),
            elim.reduced_graph.n().to_string(),
            (2 * extra).to_string(),
            elim.rounds.to_string(),
            fmt((n as f64).log2()),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e6_elimination");
    group.sample_size(10);
    for (n, extra, g) in workloads::ultra_sparse_suite() {
        group.bench_with_input(
            BenchmarkId::new("ultra_sparse", format!("{n}+{extra}")),
            &g,
            |b, g| b.iter(|| black_box(greedy_elimination(g, 7).reduced_graph.n())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
