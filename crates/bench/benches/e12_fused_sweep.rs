//! E12 — fused vs unfused inner-iteration kernels (the PR 5 locality
//! work): one Chebyshev inner step's memory traffic, measured three ways
//! on the e8-sized top level (96×96 grid) and on a mid-chain-sized level.
//!
//! * `unfused`: the pre-fusion sequence — graph-walk SpMV (separate diag
//!   array, 16-byte arcs) plus two separate axpy passes over `x` and `r`,
//!   with `A·p` materialised in between.
//! * `merged_spmv`: the merged-row [`PermutedLevel`] apply plus the same
//!   two axpys (isolates the merged diag+offdiag stream's saving).
//! * `fused`: [`PermutedLevel::cheb_fused_sweep`] — one matrix pass, `A·p`
//!   never materialised (the kernel the chain's W-cycle actually runs).
//!
//! Also reports the fused `A·p` + `pᵀAp` kernel of the top-level PCG
//! against the unfused apply-then-dot pair, and the f32 storage tier's
//! variants of both fused kernels (`fused_f32`, `fused_apply_dot_f32`) —
//! the per-kernel view of the precision knob's bandwidth saving (8 vs 12
//! bytes per matrix entry, f32 direction block in the sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_graph::reorder::{rcm_order, relabel};
use parsdd_graph::Graph;
use parsdd_linalg::laplacian::laplacian_apply_rowmajor;
use parsdd_linalg::permuted::{PermutedLevel, PermutedLevelF32};
use parsdd_linalg::vector::{axpy, colwise_dots_rm};

fn workload(side: usize) -> (Graph, PermutedLevel, Vec<f64>, Vec<f64>, Vec<f64>) {
    let g = parsdd_graph::generators::grid2d(side, side, |_, _| 1.0);
    let g = relabel(&g, &rcm_order(&g));
    let m = PermutedLevel::from_graph(&g);
    let n = g.n();
    let p: Vec<f64> = (0..n).map(|i| ((i * 13) % 37) as f64 - 18.0).collect();
    let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 29) as f64 - 14.0).collect();
    let r: Vec<f64> = (0..n).map(|i| ((i * 11) % 31) as f64 - 15.0).collect();
    (g, m, p, x, r)
}

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_fused_sweep");
    for side in [96usize, 48] {
        let (g, m, p, x0, r0) = workload(side);
        let n = g.n();
        let diag: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as u32)).collect();
        let alpha = 0.37f64;

        group.bench_with_input(BenchmarkId::new("unfused", side), &side, |b, _| {
            let mut x = x0.clone();
            let mut r = r0.clone();
            let mut ap = vec![0.0f64; n];
            b.iter(|| {
                axpy(alpha, &p, &mut x);
                laplacian_apply_rowmajor(&g, &diag, &p, &mut ap, 1);
                axpy(-alpha, &ap, &mut r);
                black_box(r[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("merged_spmv", side), &side, |b, _| {
            let mut x = x0.clone();
            let mut r = r0.clone();
            let mut ap = vec![0.0f64; n];
            b.iter(|| {
                axpy(alpha, &p, &mut x);
                m.apply(&p, &mut ap);
                axpy(-alpha, &ap, &mut r);
                black_box(r[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("fused", side), &side, |b, _| {
            let mut x = x0.clone();
            let mut r = r0.clone();
            b.iter(|| {
                m.cheb_fused_sweep(alpha, &p, &mut x, &mut r, 1);
                black_box(r[0]);
            });
        });
        let m32 = PermutedLevelF32::from_level(&m);
        let p32: Vec<f32> = p.iter().map(|&v| v as f32).collect();
        group.bench_with_input(BenchmarkId::new("fused_f32", side), &side, |b, _| {
            let mut x = x0.clone();
            let mut r = r0.clone();
            b.iter(|| {
                m32.cheb_fused_sweep(alpha, &p32, &mut x, &mut r, 1);
                black_box(r[0]);
            });
        });

        group.bench_with_input(BenchmarkId::new("apply_then_dot", side), &side, |b, _| {
            let mut ap = vec![0.0f64; n];
            b.iter(|| {
                m.apply(&p, &mut ap);
                black_box(colwise_dots_rm(&p, &ap, 1)[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("fused_apply_dot", side), &side, |b, _| {
            let mut ap = vec![0.0f64; n];
            b.iter(|| {
                black_box(m.fused_apply_dot(&p, &mut ap, 1)[0]);
            });
        });
        group.bench_with_input(
            BenchmarkId::new("fused_apply_dot_f32", side),
            &side,
            |b, _| {
                let mut ap = vec![0.0f64; n];
                b.iter(|| {
                    black_box(m32.fused_apply_dot(&p, &mut ap, 1)[0]);
                });
            },
        );

        eprintln!(
            "e12 side={side}: n={n} m={} merged stream {} bytes (f32 tier {}) vs \
             graph-walk {} bytes/apply",
            g.m(),
            m.stream_bytes(),
            m32.stream_bytes(),
            // Graph-walk: 16 B/arc (target + weight + unused edge id) over
            // 2m arcs + usize offsets + the separate 8-byte diag array.
            2 * g.m() * 16 + (n + 1) * 8 + n * 8,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
