//! E3 — Theorem 4.1 work/depth: `O(m log²n)` work and `O(ρ log²n)` depth.
//!
//! Two series: (a) decomposition time as the graph grows (work scaling —
//! should be near-linear in m), and (b) decomposition time at a fixed size
//! as the number of rayon threads grows (parallel speedup), plus the
//! machine-independent depth proxy (total BFS rounds ≈ ρ·log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_decomp::split_graph;
use parsdd_decomp::SplitParams;

fn quality_table() {
    report_header(
        "E3a: work scaling with graph size (expect ~linear in m)",
        &[
            "n",
            "m",
            "time (ms)",
            "time / m (us)",
            "BFS rounds (depth proxy)",
            "arcs traversed / m",
        ],
    );
    for (n, graph) in workloads::grid_scaling_suite() {
        let t0 = Instant::now();
        let split = split_graph(&graph, &SplitParams::new(24).with_seed(1));
        let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
        report_row(&[
            n.to_string(),
            graph.m().to_string(),
            fmt(elapsed),
            fmt(elapsed * 1000.0 / graph.m() as f64),
            split.bfs_rounds_total.to_string(),
            fmt(split.arcs_traversed as f64 / graph.m() as f64),
        ]);
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report_header(
        &format!(
            "E3b: thread scaling at fixed size (self-relative speedup; {cpus} hardware threads)"
        ),
        &[
            "threads",
            "best time (ms)",
            "speedup vs 1 thread",
            "BFS rounds",
        ],
    );
    let graph = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let mut t1 = None;
    for threads in [1usize, 2, 4, 8, 16] {
        // One pool per width, reused across repetitions (building a pool
        // spawns OS threads — that must not be inside the timed region).
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let mut best = f64::INFINITY;
        let mut rounds = 0u64;
        for _ in 0..5 {
            let (elapsed, r) = pool.install(|| {
                let t0 = Instant::now();
                let split = split_graph(&graph, &SplitParams::new(24).with_seed(1));
                (t0.elapsed().as_secs_f64() * 1000.0, split.bfs_rounds_total)
            });
            best = best.min(elapsed);
            rounds = r;
        }
        if t1.is_none() {
            t1 = Some(best);
        }
        report_row(&[
            threads.to_string(),
            fmt(best),
            fmt(t1.unwrap() / best),
            rounds.to_string(),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e3_split_graph");
    group.sample_size(10);
    for (n, graph) in workloads::grid_scaling_suite() {
        group.bench_with_input(BenchmarkId::new("grid", n), &graph, |b, g| {
            b.iter(|| black_box(split_graph(g, &SplitParams::new(24).with_seed(1)).component_count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
