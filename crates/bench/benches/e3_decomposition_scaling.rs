//! E3 — Theorem 4.1 work/depth: `O(m log²n)` work and `O(ρ log²n)` depth.
//!
//! Two series: (a) decomposition time as the graph grows (work scaling —
//! should be near-linear in m), and (b) decomposition time at a fixed size
//! as the number of rayon threads grows (parallel speedup), plus the
//! machine-independent depth proxy (total BFS rounds ≈ ρ·log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_decomp::split_graph;
use parsdd_decomp::SplitParams;
use parsdd_graph::parutil::with_threads;

fn quality_table() {
    report_header(
        "E3a: work scaling with graph size (expect ~linear in m)",
        &[
            "n",
            "m",
            "time (ms)",
            "time / m (us)",
            "BFS rounds (depth proxy)",
            "arcs traversed / m",
        ],
    );
    for (n, graph) in workloads::grid_scaling_suite() {
        let t0 = Instant::now();
        let split = split_graph(&graph, &SplitParams::new(24).with_seed(1));
        let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
        report_row(&[
            n.to_string(),
            graph.m().to_string(),
            fmt(elapsed),
            fmt(elapsed * 1000.0 / graph.m() as f64),
            split.bfs_rounds_total.to_string(),
            fmt(split.arcs_traversed as f64 / graph.m() as f64),
        ]);
    }

    report_header(
        "E3b: thread scaling at fixed size (expect speedup, depth unchanged)",
        &["threads", "time (ms)", "speedup vs 1 thread", "BFS rounds"],
    );
    let graph = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let mut t1 = None;
    for threads in [1usize, 2, 4, 8, 16] {
        let (elapsed, rounds) = with_threads(threads, || {
            let t0 = Instant::now();
            let split = split_graph(&graph, &SplitParams::new(24).with_seed(1));
            (t0.elapsed().as_secs_f64() * 1000.0, split.bfs_rounds_total)
        });
        if t1.is_none() {
            t1 = Some(elapsed);
        }
        report_row(&[
            threads.to_string(),
            fmt(elapsed),
            fmt(t1.unwrap() / elapsed),
            rounds.to_string(),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e3_split_graph");
    group.sample_size(10);
    for (n, graph) in workloads::grid_scaling_suite() {
        group.bench_with_input(BenchmarkId::new("grid", n), &graph, |b, g| {
            b.iter(|| black_box(split_graph(g, &SplitParams::new(24).with_seed(1)).component_count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
