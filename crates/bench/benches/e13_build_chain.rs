//! E13 — parallel chain construction (the raw-speed runtime tier's build
//! passes): wall-clock of `build_chain` on the e8-sized workload (96×96
//! grid) at pool widths 1 and 4.
//!
//! The scope-parallel build is pinned **bitwise identical** across pool
//! widths by `tests/parallel.rs`, so the two widths here compare pure
//! runtime behaviour — scheduling overhead on narrow hosts, speedup on
//! wide ones — with no solution-quality confound. On a 1-CPU host the
//! width-4 point measures the Chase-Lev scheduler's overhead under
//! time-slicing, which is exactly the regression this bench exists to
//! catch (a fatter task protocol shows up here first).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_solver::chain::{build_chain, ChainOptions};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_build_chain");
    let g = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let options = ChainOptions::default();
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::new("grid96", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| black_box(build_chain(black_box(&g), &options))));
        });
    }
    let chain = build_chain(&g, &options);
    eprintln!(
        "e13 grid 96x96: n={} m={} depth={} work/app={:.3e}",
        g.n(),
        g.m(),
        chain.depth(),
        chain.stats().work_per_application
    );
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
