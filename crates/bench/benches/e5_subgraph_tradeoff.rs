//! E5 — Theorem 5.9: the low-stretch subgraph trades extra edges for
//! stretch: `n−1+m(c·log³n/β)^λ` edges vs `m·β²·log^{3λ+3}n` total stretch.
//!
//! Sweeps the practical knobs (bucket base z ↔ β, promotion lag λ) and
//! reports the number of extra edges beyond a spanning tree and the
//! sampled average stretch: more extra edges ⇒ lower stretch, with λ
//! controlling how fast the extra-edge count falls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_bench::{fmt, report_header, report_row};
use parsdd_graph::generators;
use parsdd_lsst::stretch::{stretch_over_subgraph_sampled, stretch_over_tree};
use parsdd_lsst::{akpw, ls_subgraph, AkpwParams, LsSubgraphParams};

fn quality_table() {
    report_header(
        "E5: edges vs stretch trade-off of LSSubgraph (Theorem 5.9)",
        &[
            "graph",
            "z",
            "lambda",
            "edges",
            "extra vs tree",
            "avg stretch (sampled)",
            "AKPW tree avg stretch",
        ],
    );
    let cases = vec![
        (
            "weighted-grid-64x64",
            generators::with_power_law_weights(&generators::grid2d(64, 64, |_, _| 1.0), 6, 11),
        ),
        (
            "weighted-random (n=3000, m=12000)",
            generators::weighted_random_graph(2000, 8_000, 1.0, 1e4, 13),
        ),
    ];
    for (name, g) in &cases {
        let tree = akpw(g, &AkpwParams::practical(16.0).with_seed(3));
        let tree_rep = stretch_over_tree(g, &tree.tree_edges);
        for (z, lambda) in [(8.0f64, 1u32), (8.0, 2), (16.0, 2), (32.0, 3)] {
            let out = ls_subgraph(g, &LsSubgraphParams::practical(z, lambda).with_seed(3));
            let edges = out.all_edges();
            let rep = stretch_over_subgraph_sampled(g, &edges, 400, 7);
            report_row(&[
                name.to_string(),
                fmt(z),
                lambda.to_string(),
                edges.len().to_string(),
                format!("{:+}", edges.len() as i64 - (g.n() as i64 - 1)),
                fmt(rep.average_stretch),
                fmt(tree_rep.average_stretch),
            ]);
        }
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e5_ls_subgraph_build");
    group.sample_size(10);
    let g = generators::with_power_law_weights(&generators::grid2d(64, 64, |_, _| 1.0), 6, 11);
    for lambda in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::new("lambda", lambda), &lambda, |b, &lambda| {
            b.iter(|| {
                black_box(
                    ls_subgraph(&g, &LsSubgraphParams::practical(16.0, lambda).with_seed(3))
                        .all_edges()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
