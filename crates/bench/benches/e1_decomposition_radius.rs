//! E1 — Theorem 4.1(2): the decomposition's strong radius is at most ρ.
//!
//! For each workload graph and each ρ, runs `Partition` and reports the
//! measured maximum component radius and strong diameter (both must stay
//! below ρ and 2ρ respectively in the paper's regime ρ ≥ 2·log₂ n), plus
//! the component count. The timing group measures one decomposition per
//! (graph, ρ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_decomp::partition::partition_single_class;
use parsdd_decomp::stats::decomposition_stats;
use parsdd_decomp::PartitionParams;

const RHOS: [u32; 4] = [8, 16, 32, 64];

fn quality_table() {
    report_header(
        "E1: strong radius vs rho (Theorem 4.1(2))",
        &[
            "graph",
            "n",
            "m",
            "rho",
            "components",
            "max radius",
            "strong diameter",
            "radius <= rho",
        ],
    );
    for wl in workloads::small_suite() {
        for rho in RHOS {
            let res = partition_single_class(&wl.graph, &PartitionParams::new(rho).with_seed(1));
            let stats = decomposition_stats(&wl.graph, &res.split, false);
            let paper_regime = rho as f64 >= 2.0 * (wl.graph.n() as f64).log2();
            report_row(&[
                wl.name.to_string(),
                wl.graph.n().to_string(),
                wl.graph.m().to_string(),
                rho.to_string(),
                stats.components.to_string(),
                stats.max_radius.to_string(),
                stats.max_strong_diameter.to_string(),
                format!(
                    "{}{}",
                    stats.max_radius <= rho,
                    if paper_regime {
                        ""
                    } else {
                        " (below paper regime)"
                    }
                ),
            ]);
            let _ = fmt(0.0);
        }
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e1_partition");
    group.sample_size(10);
    let suite = workloads::small_suite();
    let wl = &suite[0];
    for rho in [16u32, 64] {
        group.bench_with_input(BenchmarkId::new(wl.name, rho), &rho, |b, &rho| {
            b.iter(|| {
                let res =
                    partition_single_class(&wl.graph, &PartitionParams::new(rho).with_seed(1));
                black_box(res.split.component_count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
