//! A1 — ablation of the solver's design choices:
//!
//! * inner iteration: Chebyshev (the paper's rPCh) vs fixed-iteration PCG;
//! * preconditioner substrate: low-stretch subgraph chain vs a single MST
//!   (tree) preconditioner vs Jacobi;
//! * κ schedule: stretch-adaptive (default) vs the uniform κ of Lemma 6.9;
//! * practical vs paper AKPW constants for the underlying tree.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_lsst::stretch::stretch_over_tree;
use parsdd_lsst::{akpw, AkpwParams};
use parsdd_solver::baseline;
use parsdd_solver::chain::{ChainOptions, IterationMethod};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

const TOL: f64 = 1e-8;

fn quality_table() {
    report_header(
        "A1a: inner iteration and kappa schedule ablation (solve time / outer iterations)",
        &[
            "graph",
            "configuration",
            "build (ms)",
            "solve (ms)",
            "outer iters",
            "converged",
        ],
    );
    for wl in workloads::small_suite().into_iter().take(1) {
        let b = workloads::rhs(wl.graph.n(), 11);
        let configs: Vec<(&str, ChainOptions)> = vec![
            (
                "chebyshev + adaptive kappa (default)",
                ChainOptions::default(),
            ),
            (
                "pcg inner + adaptive kappa",
                ChainOptions {
                    inner_method: IterationMethod::ConjugateGradient,
                    ..Default::default()
                },
            ),
            (
                "chebyshev + uniform kappa=64 (Lemma 6.9)",
                ChainOptions::default().with_kappa(64.0),
            ),
            (
                "chebyshev + uniform kappa=16",
                ChainOptions::default().with_kappa(16.0),
            ),
        ];
        for (name, chain) in configs {
            let t0 = Instant::now();
            let solver = SddSolver::new_laplacian(
                &wl.graph,
                SddSolverOptions::default()
                    .with_tolerance(TOL)
                    .with_chain(chain),
            );
            let build = t0.elapsed().as_secs_f64() * 1000.0;
            let t1 = Instant::now();
            let out = solver.solve(&b);
            let solve = t1.elapsed().as_secs_f64() * 1000.0;
            report_row(&[
                wl.name.to_string(),
                name.to_string(),
                fmt(build),
                fmt(solve),
                out.iterations.to_string(),
                out.converged.to_string(),
            ]);
        }
        // Baselines for context.
        let t2 = Instant::now();
        let tree = baseline::solve_tree_pcg(&wl.graph, &b, TOL, 50_000);
        report_row(&[
            wl.name.to_string(),
            "MST-preconditioned CG (no chain)".into(),
            "-".into(),
            fmt(t2.elapsed().as_secs_f64() * 1000.0),
            tree.iterations.to_string(),
            tree.converged.to_string(),
        ]);
    }

    report_header(
        "A1b: AKPW constants — paper schedule vs practical bucket bases (average stretch)",
        &[
            "graph",
            "z (practical) / paper",
            "avg stretch",
            "iterations",
        ],
    );
    let g = parsdd_graph::generators::with_power_law_weights(
        &parsdd_graph::generators::grid2d(48, 48, |_, _| 1.0),
        5,
        3,
    );
    for (label, params) in [
        ("z=8", AkpwParams::practical(8.0).with_seed(3)),
        ("z=32", AkpwParams::practical(32.0).with_seed(3)),
        ("z=128", AkpwParams::practical(128.0).with_seed(3)),
        ("paper schedule", AkpwParams::paper(g.n()).with_seed(3)),
    ] {
        let t = akpw(&g, &params);
        let rep = stretch_over_tree(&g, &t.tree_edges);
        report_row(&[
            "weighted-grid-48".into(),
            label.into(),
            fmt(rep.average_stretch),
            t.iterations.to_string(),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("a1_ablation");
    group.sample_size(10);
    let g = parsdd_graph::generators::grid2d(64, 64, |_, _| 1.0);
    let b = workloads::rhs(g.n(), 11);
    for (name, method) in [
        ("chebyshev", IterationMethod::Chebyshev),
        ("pcg", IterationMethod::ConjugateGradient),
    ] {
        let chain = ChainOptions {
            inner_method: method,
            ..Default::default()
        };
        let solver = SddSolver::new_laplacian(
            &g,
            SddSolverOptions::default()
                .with_tolerance(TOL)
                .with_chain(chain),
        );
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(solver.solve(&b).iterations))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
