//! E10 — the applications layer (Section 1 "Some Applications"):
//! spectral-sparsifier quality via effective resistances [SS08] and
//! approximate max-flow via electrical flows [CKM+10], both driven by the
//! solver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_apps::maxflow::{approx_max_flow, exact_max_flow};
use parsdd_apps::resistance::approximate_effective_resistances;
use parsdd_apps::sparsifier::spectral_sparsify;
use parsdd_bench::{fmt, report_header, report_row};
use parsdd_graph::generators;
use parsdd_linalg::power::quadratic_form_ratio_bounds;
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

fn quality_table() {
    // Spectral sparsification.
    report_header(
        "E10a: spectral sparsifier quality (Spielman–Srivastava via the solver)",
        &[
            "graph",
            "m",
            "samples",
            "distinct edges",
            "quadratic-form band",
            "time (ms)",
        ],
    );
    let cases = vec![
        ("complete-100", generators::complete(100, 1.0)),
        (
            "erdos-renyi (n=1000, m=12000)",
            generators::erdos_renyi_gnm(1000, 12_000, 3),
        ),
    ];
    for (name, g) in &cases {
        let solver = SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-8));
        let t0 = Instant::now();
        let sp = spectral_sparsify(g, &solver, 25 * g.n(), 40, 7);
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        let (lo, hi) = quadratic_form_ratio_bounds(g, &sp.graph, 25, 9);
        report_row(&[
            name.to_string(),
            g.m().to_string(),
            sp.samples.to_string(),
            sp.distinct_edges.to_string(),
            format!("[{}, {}]", fmt(lo), fmt(hi)),
            fmt(ms),
        ]);
    }

    // Approximate max-flow vs exact.
    report_header(
        "E10b: approximate max-flow via electrical flows (CKM+10 inner loop)",
        &[
            "graph",
            "eps",
            "exact flow",
            "approx flow",
            "ratio",
            "electrical flows",
            "time (ms)",
        ],
    );
    let flow_cases = vec![
        ("grid-8x8", generators::grid2d(8, 8, |_, _| 1.0)),
        (
            "grid-10x10-weighted",
            generators::grid2d(10, 10, |u, v| 1.0 + ((u + v) % 3) as f64),
        ),
    ];
    for (name, g) in &flow_cases {
        let s = 0u32;
        let t = (g.n() - 1) as u32;
        let exact = exact_max_flow(g, s, t);
        for eps in [0.3f64, 0.15] {
            let t0 = Instant::now();
            let approx = approx_max_flow(g, s, t, eps, 8);
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            report_row(&[
                name.to_string(),
                fmt(eps),
                fmt(exact),
                fmt(approx.flow_value),
                fmt(approx.flow_value / exact),
                approx.iterations.to_string(),
                fmt(ms),
            ]);
        }
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e10_applications");
    group.sample_size(10);
    let g = generators::erdos_renyi_gnm(1000, 12_000, 3);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-8));
    group.bench_function("effective_resistances_40_projections", |b| {
        b.iter(|| black_box(approximate_effective_resistances(&g, &solver, 40, 7).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
