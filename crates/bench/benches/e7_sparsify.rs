//! E7 — Lemma 6.1/6.2: the incremental sparsifier's size shrinks like
//! `|E(Ĝ)| + O(S·log n/κ)` as κ grows, while the spectral distance between
//! the input and the sparsifier (measured by sampled quadratic-form ratios)
//! widens proportionally — the `κ` trade-off the chain is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_bench::{fmt, report_header, report_row};
use parsdd_graph::generators;
use parsdd_graph::mst::kruskal;
use parsdd_linalg::power::quadratic_form_ratio_bounds;
use parsdd_lsst::{ls_subgraph, LsSubgraphParams};
use parsdd_solver::sparsify::{incremental_sparsify, SparsifyParams};

fn quality_table() {
    report_header(
        "E7: sparsifier size and spectral spread vs kappa (Lemma 6.1/6.2)",
        &[
            "graph",
            "kappa",
            "subgraph edges",
            "sampled edges",
            "total",
            "ratio spread hi/lo",
        ],
    );
    let cases = vec![
        (
            "weighted-random (n=2000, m=10000)",
            generators::weighted_random_graph(1500, 7_500, 1.0, 8.0, 5),
        ),
        (
            "grid-48 weighted",
            generators::with_power_law_weights(&generators::grid2d(48, 48, |_, _| 1.0), 4, 9),
        ),
    ];
    for (name, g) in &cases {
        let sub = ls_subgraph(g, &LsSubgraphParams::practical(16.0, 2).with_seed(3));
        let sub_edges = sub.all_edges();
        let forest: Vec<u32> = {
            let sg = g.edge_subgraph(&sub_edges);
            kruskal(&sg)
                .into_iter()
                .map(|e| sub_edges[e as usize])
                .collect()
        };
        for kappa in [4.0f64, 16.0, 64.0, 256.0, 1024.0] {
            let sp = incremental_sparsify(
                g,
                &sub_edges,
                &forest,
                &SparsifyParams {
                    kappa,
                    oversample: 2.0,
                    tree_scale: 1.0,
                    seed: 11,
                },
            );
            let (lo, hi) = quadratic_form_ratio_bounds(g, &sp.graph, 20, 13);
            report_row(&[
                name.to_string(),
                fmt(kappa),
                sp.subgraph_edges.to_string(),
                sp.sampled_edges.to_string(),
                sp.edge_count().to_string(),
                fmt(hi / lo),
            ]);
        }
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e7_incremental_sparsify");
    group.sample_size(10);
    let g = generators::weighted_random_graph(1500, 7_500, 1.0, 8.0, 5);
    let tree = kruskal(&g);
    for kappa in [16.0f64, 256.0] {
        group.bench_with_input(
            BenchmarkId::new("kappa", kappa as u64),
            &kappa,
            |b, &kappa| {
                b.iter(|| {
                    black_box(
                        incremental_sparsify(
                            &g,
                            &tree,
                            &tree,
                            &SparsifyParams {
                                kappa,
                                oversample: 2.0,
                                tree_scale: 1.0,
                                seed: 11,
                            },
                        )
                        .edge_count(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
