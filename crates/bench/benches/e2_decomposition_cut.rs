//! E2 — Theorem 4.1(3): the fraction of edges cut per class decays like
//! `c₁·k·log³n / ρ`, i.e. inversely in ρ.
//!
//! Reports, for each workload and ρ, the measured cut fraction (single
//! class, k = 1) and the product `fraction × ρ` — the paper predicts the
//! product stays roughly flat as ρ grows. Also reports a two-class run
//! (k = 2, light/heavy edges) to show the per-class guarantee.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_decomp::partition::{partition, partition_single_class};
use parsdd_decomp::PartitionParams;

const RHOS: [u32; 5] = [6, 12, 24, 48, 96];

fn quality_table() {
    report_header(
        "E2: cut fraction vs rho (Theorem 4.1(3); expect fraction ~ 1/rho)",
        &["graph", "rho", "cut fraction", "fraction x rho"],
    );
    for wl in workloads::small_suite() {
        for rho in RHOS {
            let res = partition_single_class(&wl.graph, &PartitionParams::new(rho).with_seed(3));
            let f = res.cut_fraction(0);
            report_row(&[
                wl.name.to_string(),
                rho.to_string(),
                fmt(f),
                fmt(f * rho as f64),
            ]);
        }
    }

    report_header(
        "E2b: per-class cut fractions with k = 2 classes (light/heavy edges)",
        &[
            "graph",
            "rho",
            "light-class fraction",
            "heavy-class fraction",
            "attempts",
        ],
    );
    for wl in workloads::small_suite() {
        let median = {
            let mut w: Vec<f64> = wl.graph.edges().iter().map(|e| e.w).collect();
            w.sort_by(|a, b| a.partial_cmp(b).unwrap());
            w[w.len() / 2]
        };
        let classes: Vec<u32> = wl
            .graph
            .edges()
            .iter()
            .map(|e| (e.w > median) as u32)
            .collect();
        for rho in [12u32, 48] {
            let res = partition(
                &wl.graph,
                &classes,
                2,
                &PartitionParams::new(rho).with_seed(5),
            );
            report_row(&[
                wl.name.to_string(),
                rho.to_string(),
                fmt(res.cut_fraction(0)),
                fmt(res.cut_fraction(1)),
                res.attempts.to_string(),
            ]);
        }
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e2_cut_fraction");
    group.sample_size(10);
    let suite = workloads::small_suite();
    let wl = &suite[1];
    group.bench_function("two_class_partition_rho24", |b| {
        let classes: Vec<u32> = wl
            .graph
            .edges()
            .iter()
            .map(|e| (e.w > 10.0) as u32)
            .collect();
        b.iter(|| {
            let res = partition(
                &wl.graph,
                &classes,
                2,
                &PartitionParams::new(24).with_seed(5),
            );
            black_box(res.cut_per_class.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
