//! E9 — Theorem 1.1 (depth / parallelism) and Section 6.3: parallel
//! speedup of the solver with thread count, chain shape (level sizes,
//! m^{1/3} termination), and the recursion width ∏√κ_i.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

fn quality_table() {
    // Chain shape (Section 6.3).
    report_header(
        "E9a: chain shape (Definition 6.3 / Section 6.3 termination)",
        &[
            "graph",
            "level vertices",
            "level edges",
            "kappas",
            "recursion width",
            "dense bottom",
            "m^(1/3)",
        ],
    );
    for wl in workloads::small_suite() {
        let solver =
            SddSolver::new_laplacian(&wl.graph, SddSolverOptions::default().with_tolerance(1e-8));
        let stats = solver.stats();
        report_row(&[
            wl.name.to_string(),
            format!("{:?}", stats.level_vertices),
            format!("{:?}", stats.level_edges),
            format!(
                "{:?}",
                stats.kappas.iter().map(|k| k.round()).collect::<Vec<_>>()
            ),
            fmt(stats.recursion_leaves),
            stats.direct_bottom.to_string(),
            fmt((wl.graph.m() as f64).powf(1.0 / 3.0)),
        ]);
    }

    // Thread scaling.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report_header(
        &format!(
            "E9b: solve-time speedup with threads (fixed 96x96 grid; {cpus} hardware threads)"
        ),
        &["threads", "build (ms)", "solve (ms)", "speedup vs 1 thread"],
    );
    let g = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let b = workloads::rhs(g.n(), 7);
    let mut base = None;
    for threads in [1usize, 2, 4, 8, 16] {
        // One pool per width, reused for build and solve; pool
        // construction (OS thread spawning) stays outside the timing.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let (build_ms, solve_ms) = pool.install(|| {
            let t0 = Instant::now();
            let solver =
                SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-8));
            let build = t0.elapsed().as_secs_f64() * 1000.0;
            let t1 = Instant::now();
            let out = solver.solve(&b);
            assert!(out.relative_residual <= 1e-6);
            (build, t1.elapsed().as_secs_f64() * 1000.0)
        });
        if base.is_none() {
            base = Some(solve_ms);
        }
        report_row(&[
            threads.to_string(),
            fmt(build_ms),
            fmt(solve_ms),
            fmt(base.unwrap() / solve_ms),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e9_threads");
    group.sample_size(10);
    let g = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let b = workloads::rhs(g.n(), 7);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-8));
    for threads in [1usize, 8] {
        // Build the pool once; `with_threads` inside `bch.iter` would
        // spawn and join 8 OS threads per measured iteration.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(
            BenchmarkId::new("solve", threads),
            &threads,
            |bch, &_threads| bch.iter(|| pool.install(|| black_box(solver.solve(&b).iterations))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
