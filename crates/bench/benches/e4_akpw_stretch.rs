//! E4 — Theorem 5.1: AKPW produces spanning trees whose *average stretch*
//! grows sub-polynomially (`2^{O(√(log n log log n))}`), in contrast to the
//! Θ(√n) average stretch of an MST on a grid.
//!
//! Reports the average stretch of the AKPW tree vs the MST and a BFS tree
//! on growing grids and on weighted random graphs, plus construction-time
//! scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsdd_bench::{fmt, report_header, report_row};
use parsdd_graph::bfs::parallel_bfs;
use parsdd_graph::generators;
use parsdd_graph::mst::kruskal;
use parsdd_lsst::stretch::stretch_over_tree;
use parsdd_lsst::{akpw, AkpwParams};

fn quality_table() {
    report_header(
        "E4: average stretch of AKPW trees vs baselines (Theorem 5.1)",
        &[
            "graph",
            "n",
            "m",
            "MST avg",
            "BFS-tree avg",
            "AKPW avg",
            "AKPW max",
            "iterations",
        ],
    );
    let mut cases: Vec<(String, parsdd_graph::Graph)> = Vec::new();
    for side in [24usize, 48, 96] {
        cases.push((
            format!("grid-{side}x{side}"),
            generators::grid2d(side, side, |_, _| 1.0),
        ));
    }
    {
        let side = 48usize;
        cases.push((
            format!("weighted-grid-{side}"),
            generators::with_power_law_weights(&generators::grid2d(side, side, |_, _| 1.0), 5, 3),
        ));
    }
    cases.push((
        "rand-regular-4 (n=2048)".into(),
        generators::random_regular(2048, 4, 9),
    ));

    for (name, g) in &cases {
        let mst = kruskal(g);
        let mst_rep = stretch_over_tree(g, &mst);
        let bfs_tree = parallel_bfs(g, 0).tree_edges();
        let bfs_rep = stretch_over_tree(g, &bfs_tree);
        let tree = akpw(g, &AkpwParams::practical(32.0).with_seed(5));
        let akpw_rep = stretch_over_tree(g, &tree.tree_edges);
        report_row(&[
            name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            fmt(mst_rep.average_stretch),
            fmt(bfs_rep.average_stretch),
            fmt(akpw_rep.average_stretch),
            fmt(akpw_rep.max_stretch),
            tree.iterations.to_string(),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e4_akpw_build");
    group.sample_size(10);
    for side in [32usize, 64, 96] {
        let g = generators::grid2d(side, side, |_, _| 1.0);
        group.bench_with_input(BenchmarkId::new("grid", side * side), &g, |b, g| {
            b.iter(|| {
                black_box(
                    akpw(g, &AkpwParams::practical(32.0).with_seed(5))
                        .tree_edges
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
