//! E8 — Theorem 1.1 (work): the chain solver's time grows near-linearly in
//! m and beats the CG baselines on ill-conditioned inputs, at fixed
//! accuracy ε = 1e-8.
//!
//! Reports, for each workload: chain-build time, solve time, outer
//! iterations, and the same for plain CG / Jacobi-PCG / MST-preconditioned
//! CG, plus a size-scaling series on grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use parsdd_bench::{fmt, report_header, report_row, workloads};
use parsdd_solver::baseline;
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

const TOL: f64 = 1e-8;

fn quality_table() {
    report_header(
        "E8: solver vs baselines at eps = 1e-8 (Theorem 1.1, work)",
        &[
            "graph",
            "n",
            "m",
            "chain build (ms)",
            "chain solve (ms)",
            "chain iters",
            "CG (ms/iters)",
            "Jacobi-PCG (ms/iters)",
            "Tree-PCG (ms/iters)",
        ],
    );
    for wl in workloads::small_suite() {
        let g = &wl.graph;
        let b = workloads::rhs(g.n(), 3);
        let t0 = Instant::now();
        let solver = SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(TOL));
        let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let out = solver.solve(&b);
        let solve_ms = t1.elapsed().as_secs_f64() * 1000.0;

        let t2 = Instant::now();
        let cg = baseline::solve_cg(g, &b, TOL, 20_000);
        let cg_ms = t2.elapsed().as_secs_f64() * 1000.0;
        let t3 = Instant::now();
        let jac = baseline::solve_jacobi_pcg(g, &b, TOL, 20_000);
        let jac_ms = t3.elapsed().as_secs_f64() * 1000.0;
        let t4 = Instant::now();
        let tree = baseline::solve_tree_pcg(g, &b, TOL, 20_000);
        let tree_ms = t4.elapsed().as_secs_f64() * 1000.0;

        report_row(&[
            wl.name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            fmt(build_ms),
            fmt(solve_ms),
            format!("{} (conv={})", out.iterations, out.converged),
            format!("{}/{}", fmt(cg_ms), cg.iterations),
            format!("{}/{}", fmt(jac_ms), jac.iterations),
            format!("{}/{}", fmt(tree_ms), tree.iterations),
        ]);
    }

    report_header(
        "E8b: solve-time scaling with size (grids; expect ~linear in m)",
        &[
            "n",
            "m",
            "build (ms)",
            "solve (ms)",
            "solve time / m (us)",
            "chain levels",
        ],
    );
    for (n, g) in workloads::grid_scaling_suite() {
        let b = workloads::rhs(g.n(), 5);
        let t0 = Instant::now();
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(TOL));
        let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let out = solver.solve(&b);
        let solve_ms = t1.elapsed().as_secs_f64() * 1000.0;
        report_row(&[
            n.to_string(),
            g.m().to_string(),
            fmt(build_ms),
            fmt(solve_ms),
            fmt(solve_ms * 1000.0 / g.m() as f64),
            format!("{} (conv={})", solver.chain().depth(), out.converged),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    quality_table();
    let mut group = c.benchmark_group("e8_solve");
    group.sample_size(10);
    for (n, g) in workloads::grid_scaling_suite() {
        let b = workloads::rhs(g.n(), 5);
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(TOL));
        group.bench_with_input(BenchmarkId::new("chain_solve_grid", n), &b, |bch, b| {
            bch.iter(|| black_box(solver.solve(b).iterations))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
