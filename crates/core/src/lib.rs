//! # parsdd
//!
//! A Rust reproduction of *Near Linear-Work Parallel SDD Solvers,
//! Low-Diameter Decomposition, and Low-Stretch Subgraphs* (Blelloch,
//! Gupta, Koutis, Miller, Peng, Tangwongsan; SPAA 2011).
//!
//! This facade crate re-exports the full public API of the per-subsystem
//! crates and adds a handful of high-level convenience entry points. The
//! subsystems map one-to-one onto the paper:
//!
//! | Paper | Crate / module |
//! |---|---|
//! | Section 2 (ball growing, Laplacians, Gremban) | [`graph`], [`linalg`] |
//! | Section 4 (low-diameter decomposition) | [`decomp`] |
//! | Section 5 (AKPW trees, low-stretch subgraphs) | [`lsst`] |
//! | Section 6 / Theorem 1.1 (SDD solver) | [`solver`] |
//! | Section 1 applications (sparsifiers, flows, …) | [`apps`] |
//!
//! ## Quick start
//!
//! ```
//! use parsdd::prelude::*;
//!
//! // A 2-D grid Laplacian (the classic SDD benchmark) ...
//! let graph = parsdd::graph::generators::grid2d(20, 20, |_, _| 1.0);
//!
//! // ... a balanced right-hand side ...
//! let mut b: Vec<f64> = (0..graph.n()).map(|i| (i % 5) as f64).collect();
//! parsdd::linalg::vector::project_out_constant(&mut b);
//!
//! // ... build the preconditioner chain once and solve.
//! let solver = SddSolver::new_laplacian(&graph, SddSolverOptions::default());
//! let solution = solver.solve(&b);
//! assert!(solution.converged);
//!
//! // Many right-hand sides? Batch them through the chain: one blocked
//! // W-cycle pass per group of rhs, bitwise identical to looping
//! // `solve` — and several times faster per rhs (DESIGN.md §2.2).
//! let mut b2 = b.clone();
//! b2.reverse();
//! parsdd::linalg::vector::project_out_constant(&mut b2);
//! let solutions = solver.solve_many(&[b, b2]);
//! assert!(solutions.iter().all(|s| s.converged));
//! ```
//!
//! ## Error handling
//!
//! The infallible API above panics on malformed input. Production
//! callers use the fallible front door: every failure is a typed
//! [`BuildError`]/[`SolveError`], and a struggling solve escalates
//! through a deterministic recovery ladder (iterate refresh → stronger
//! chain → direct envelope factor) before giving up, recording each
//! rung in [`SolveOutcome::recovery`] (DESIGN.md §2.5).
//!
//! ```
//! use parsdd::prelude::*;
//!
//! let graph = parsdd::graph::generators::grid2d(20, 20, |_, _| 1.0);
//! let mut b: Vec<f64> = (0..graph.n()).map(|i| (i % 5) as f64).collect();
//! parsdd::linalg::vector::project_out_constant(&mut b);
//!
//! let solver = SddSolver::try_new_laplacian(&graph, SddSolverOptions::default())
//!     .expect("validated build");
//! let out = solver.try_solve(&b).expect("well-posed system");
//! assert!(out.converged);
//! assert!(out.recovery.is_empty()); // non-empty iff the ladder rescued it
//!
//! // Malformed inputs are typed errors, not panics:
//! let bad = vec![f64::NAN; graph.n()];
//! assert!(matches!(
//!     solver.try_solve(&bad),
//!     Err(SolveError::NonFiniteRhs { column: 0, index: 0 })
//! ));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

/// Graph substrate (CSR graphs, generators, BFS, MST, forests, contraction).
pub use parsdd_graph as graph;

/// Linear-algebra substrate (vectors, CSR matrices, Laplacians, CG,
/// Chebyshev, dense LDLᵀ, Gremban reduction).
pub use parsdd_linalg as linalg;

/// Parallel low-diameter decomposition (Section 4).
pub use parsdd_decomp as decomp;

/// Low-stretch spanning trees and ultra-sparse subgraphs (Section 5).
pub use parsdd_lsst as lsst;

/// The SDD solver: sparsification, elimination, preconditioner chains,
/// recursive preconditioned Chebyshev (Section 6).
pub use parsdd_solver as solver;

/// Applications: effective resistances, spectral sparsifiers, electrical
/// flows, approximate max-flow, spectral partitioning, Poisson problems.
pub use parsdd_apps as apps;

pub use parsdd_decomp::{partition, split_graph, PartitionParams, SplitParams};
pub use parsdd_graph::{Edge, Graph, GraphBuilder};
pub use parsdd_linalg::CsrMatrix;
pub use parsdd_lsst::{akpw, ls_subgraph, AkpwParams, LsSubgraphParams};
pub use parsdd_solver::{
    BuildError, ChainOptions, RecoveryRung, RecoveryStep, SddSolver, SddSolverOptions, SolveError,
    SolveOutcome,
};

/// Commonly used items, for `use parsdd::prelude::*`.
pub mod prelude {
    pub use parsdd_decomp::{partition, split_graph, PartitionParams, SplitParams};
    pub use parsdd_graph::{Edge, Graph, GraphBuilder};
    pub use parsdd_linalg::operator::{LinearOperator, Preconditioner};
    pub use parsdd_linalg::CsrMatrix;
    pub use parsdd_lsst::{akpw, ls_subgraph, AkpwParams, LsSubgraphParams};
    pub use parsdd_solver::{
        BuildError, ChainOptions, RecoveryRung, RecoveryStep, SddSolver, SddSolverOptions,
        SolveError, SolveOutcome,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let g = crate::graph::generators::grid2d(12, 12, |_, _| 1.0);
        let split = split_graph(&g, &SplitParams::new(10));
        assert!(split.component_count >= 1);
        let tree = akpw(&g, &AkpwParams::practical(16.0));
        assert_eq!(tree.tree_edges.len(), g.n() - 1);
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
        let mut b: Vec<f64> = (0..g.n()).map(|i| (i % 3) as f64).collect();
        crate::linalg::vector::project_out_constant(&mut b);
        assert!(solver.solve(&b).converged);
    }
}
