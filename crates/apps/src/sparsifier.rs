//! Spectral sparsification by effective resistances \[SS08\].
//!
//! Sample `q` edges with replacement with probability proportional to
//! `w_e·R_eff(e)` and weight each sampled copy by `w_e/(q·p_e)`; the
//! resulting graph has `O(n log n / ε²)` edges and approximates every
//! quadratic form of the original Laplacian within `1 ± ε` (w.h.p.). The
//! paper cites this as a direct application of its solver: the resistances
//! come from `O(log n)` SDD solves.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

use parsdd_graph::{Edge, Graph};
use parsdd_solver::sdd_solve::SddSolver;

use crate::resistance::approximate_effective_resistances;

/// The result of spectral sparsification.
#[derive(Debug, Clone)]
pub struct SparsifierResult {
    /// The sparsified graph (same vertex set, reweighted sampled edges).
    pub graph: Graph,
    /// Number of samples drawn (with replacement).
    pub samples: usize,
    /// Number of distinct edges in the output.
    pub distinct_edges: usize,
}

/// Spectrally sparsifies `g` by sampling `samples` edges with replacement
/// proportionally to `w_e·R_eff(e)` (estimated with `projections` solves).
pub fn spectral_sparsify(
    g: &Graph,
    solver: &SddSolver,
    samples: usize,
    projections: usize,
    seed: u64,
) -> SparsifierResult {
    assert!(samples > 0);
    let m = g.m();
    let reff = approximate_effective_resistances(g, solver, projections, seed);
    // Sampling weights p_e ∝ w_e·R_eff(e); Σ w_e R_eff(e) ≈ n − 1.
    let scores: Vec<f64> = g
        .edges()
        .iter()
        .zip(&reff)
        .map(|(e, &r)| (e.w * r).max(1e-300))
        .collect();
    let total: f64 = scores.iter().sum();
    // Cumulative distribution for inverse-transform sampling.
    let mut cdf = Vec::with_capacity(m);
    let mut acc = 0.0;
    for s in &scores {
        acc += s / total;
        cdf.push(acc);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5ca1ab1e);
    let mut weight_acc: HashMap<usize, f64> = HashMap::new();
    for _ in 0..samples {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(m - 1),
        };
        let p = scores[idx] / total;
        let add = g.edge(idx as u32).w / (samples as f64 * p);
        *weight_acc.entry(idx).or_insert(0.0) += add;
    }
    let mut edges: Vec<Edge> = weight_acc
        .iter()
        .map(|(&idx, &w)| {
            let e = g.edge(idx as u32);
            Edge::new(e.u, e.v, w)
        })
        .collect();
    edges.sort_by_key(|e| (e.u, e.v));
    let distinct_edges = edges.len();
    SparsifierResult {
        graph: Graph::from_edges_unchecked(g.n(), edges),
        samples,
        distinct_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;
    use parsdd_linalg::power::quadratic_form_ratio_bounds;
    use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

    fn solver_for(g: &Graph) -> SddSolver {
        SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-8))
    }

    #[test]
    fn sparsifier_reduces_edges_and_preserves_energy() {
        let g = generators::complete(40, 1.0); // 780 edges
        let solver = solver_for(&g);
        let samples = 20 * g.n();
        let sp = spectral_sparsify(&g, &solver, samples, 60, 3);
        assert!(sp.distinct_edges < g.m(), "should drop some edges");
        assert_eq!(sp.graph.n(), g.n());
        // Quadratic forms preserved within a reasonable band.
        let (lo, hi) = quadratic_form_ratio_bounds(&g, &sp.graph, 25, 5);
        assert!(lo > 0.5 && hi < 2.0, "spectral band [{lo}, {hi}] too wide");
    }

    #[test]
    fn sparsifier_preserves_connectivity_on_grid() {
        let g = generators::grid2d(10, 10, |_, _| 1.0);
        let solver = solver_for(&g);
        let sp = spectral_sparsify(&g, &solver, 12 * g.n(), 50, 7);
        // A grid is already sparse, so the sampled graph may not shrink
        // much, but it must stay connected and spectrally close.
        let comps = parsdd_graph::components::parallel_connected_components(&sp.graph);
        assert_eq!(comps.count, 1);
        let (lo, hi) = quadratic_form_ratio_bounds(&g, &sp.graph, 20, 9);
        assert!(lo > 0.4 && hi < 2.5, "band [{lo}, {hi}]");
    }

    #[test]
    fn total_weight_roughly_preserved() {
        let g = generators::weighted_random_graph(60, 600, 1.0, 3.0, 11);
        let solver = solver_for(&g);
        let sp = spectral_sparsify(&g, &solver, 30 * g.n(), 60, 13);
        let ratio = sp.graph.total_weight() / g.total_weight();
        assert!(ratio > 0.5 && ratio < 2.0, "total weight ratio {ratio}");
    }
}
