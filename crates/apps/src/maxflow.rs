//! Approximate undirected maximum flow via electrical flows [CKM+10], plus
//! an exact augmenting-path max-flow used as ground truth.
//!
//! The paper notes that its solver, plugged into the
//! Christiano–Kelner–Mądry–Spielman–Teng framework, yields
//! `Õ(m^{4/3} poly(1/ε))`-work parallel approximate max-flow. The heart of
//! that framework is the multiplicative-weights loop implemented here: each
//! iteration computes one electrical flow with edge conductances
//! `c_e²/w_e` (capacity² over weight), penalises congested edges by
//! increasing their weight, and finally averages the flows. We expose the
//! loop for a *target flow value* `F` together with a binary search that
//! finds the largest feasible `F`, and validate against the exact max-flow.

use parsdd_graph::{Graph, VertexId};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

/// Result of the approximate max-flow computation.
#[derive(Debug, Clone)]
pub struct ApproxMaxFlowResult {
    /// The flow value achieved (after scaling down to feasibility).
    pub flow_value: f64,
    /// Edge flows oriented from `edge.u` to `edge.v`.
    pub edge_flow: Vec<f64>,
    /// Maximum congestion `|f_e|/c_e` of the returned flow (≤ 1 + ε).
    pub max_congestion: f64,
    /// Number of electrical-flow iterations (solver calls) used.
    pub iterations: usize,
}

/// Exact max-flow between `s` and `t` treating edge weights as capacities
/// (undirected), via Edmonds–Karp augmenting paths. Used as the comparator
/// in tests/experiments; runs in `O(V·E²)` so keep graphs small.
pub fn exact_max_flow(g: &Graph, s: VertexId, t: VertexId) -> f64 {
    let n = g.n();
    // Residual capacities: for every undirected edge create both arcs.
    let mut cap = std::collections::HashMap::<(u32, u32), f64>::new();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in g.edges() {
        *cap.entry((e.u, e.v)).or_insert(0.0) += e.w;
        *cap.entry((e.v, e.u)).or_insert(0.0) += e.w;
        adj[e.u as usize].push(e.v);
        adj[e.v as usize].push(e.u);
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let mut flow = 0.0f64;
    loop {
        // BFS for an augmenting path with positive residual capacity.
        let mut parent = vec![u32::MAX; n];
        parent[s as usize] = s;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            if v == t {
                break;
            }
            for &u in &adj[v as usize] {
                if parent[u as usize] == u32::MAX && *cap.get(&(v, u)).unwrap_or(&0.0) > 1e-12 {
                    parent[u as usize] = v;
                    queue.push_back(u);
                }
            }
        }
        if parent[t as usize] == u32::MAX {
            break;
        }
        // Bottleneck.
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while v != s {
            let p = parent[v as usize];
            bottleneck = bottleneck.min(*cap.get(&(p, v)).unwrap_or(&0.0));
            v = p;
        }
        // Augment.
        let mut v = t;
        while v != s {
            let p = parent[v as usize];
            *cap.get_mut(&(p, v)).expect("forward arc") -= bottleneck;
            *cap.entry((v, p)).or_insert(0.0) += bottleneck;
            v = p;
        }
        flow += bottleneck;
    }
    flow
}

/// One multiplicative-weights electrical-flow phase: tries to route `target`
/// units from `s` to `t` with congestion ≤ `1 + eps`. Returns the averaged
/// flow and its congestion, or `None` if the oracle certifies that `target`
/// exceeds the max flow (total weight of congested edges explodes).
fn mwu_phase(
    g: &Graph,
    s: VertexId,
    t: VertexId,
    target: f64,
    eps: f64,
    max_iterations: usize,
) -> Option<(Vec<f64>, f64, usize)> {
    let m = g.m();
    let capacities: Vec<f64> = g.edges().iter().map(|e| e.w).collect();
    let mut weights = vec![1.0f64; m];
    let mut avg_flow = vec![0.0f64; m];
    let mut iterations = 0usize;

    for it in 0..max_iterations {
        iterations = it + 1;
        // Electrical network: conductance of edge e is c_e² / w_e (the
        // CKMST choice). Rebuild the solver because conductances change.
        let edges: Vec<parsdd_graph::Edge> = g
            .edges()
            .iter()
            .zip(&weights)
            .map(|(e, &w)| parsdd_graph::Edge::new(e.u, e.v, e.w * e.w / w))
            .collect();
        let elec_graph = Graph::from_edges_unchecked(g.n(), edges);
        let solver = SddSolver::new_laplacian(
            &elec_graph,
            SddSolverOptions::default().with_tolerance(1e-9),
        );
        let mut b = vec![0.0; g.n()];
        b[s as usize] = target;
        b[t as usize] = -target;
        let out = solver.solve(&b);
        let phi = out.x;
        // Flow on edge e = conductance * potential difference.
        let flows: Vec<f64> = elec_graph
            .edges()
            .iter()
            .map(|e| e.w * (phi[e.u as usize] - phi[e.v as usize]))
            .collect();
        // Congestion check.
        let congestion: Vec<f64> = flows
            .iter()
            .zip(&capacities)
            .map(|(f, c)| f.abs() / c)
            .collect();
        let max_cong = congestion.iter().fold(0.0f64, |a, &b| a.max(b));
        if max_cong.is_nan() || !max_cong.is_finite() {
            return None;
        }
        // Accumulate average flow.
        for i in 0..m {
            avg_flow[i] += flows[i];
        }
        // Multiplicative weight update.
        let mut total_weight = 0.0;
        for i in 0..m {
            weights[i] *= 1.0 + (eps / 2.0) * congestion[i];
            total_weight += weights[i];
        }
        // Oracle failure heuristic: if the weights blow up, the target is
        // infeasible.
        if total_weight > (m as f64) * (1.0 / eps).exp2().max(1e12) {
            return None;
        }
        // Early exit when the averaged flow is already nearly feasible.
        let scale = 1.0 / iterations as f64;
        let avg_cong = avg_flow
            .iter()
            .zip(&capacities)
            .map(|(f, c)| (f * scale).abs() / c)
            .fold(0.0f64, f64::max);
        if avg_cong <= 1.0 + eps {
            let averaged: Vec<f64> = avg_flow.iter().map(|f| f * scale).collect();
            return Some((averaged, avg_cong, iterations));
        }
    }
    // Return the average anyway; the caller rescales to feasibility.
    let scale = 1.0 / iterations.max(1) as f64;
    let averaged: Vec<f64> = avg_flow.iter().map(|f| f * scale).collect();
    let avg_cong = averaged
        .iter()
        .zip(&capacities)
        .map(|(f, c)| f.abs() / c)
        .fold(0.0f64, f64::max);
    Some((averaged, avg_cong, iterations))
}

/// Approximate max-flow between `s` and `t` on the undirected capacitated
/// graph `g` (capacities = edge weights): binary-searches the largest
/// target value for which the multiplicative-weights electrical-flow
/// oracle finds a `(1+ε)`-congested flow, then scales that flow down to
/// strict feasibility.
pub fn approx_max_flow(
    g: &Graph,
    s: VertexId,
    t: VertexId,
    eps: f64,
    search_steps: usize,
) -> ApproxMaxFlowResult {
    assert_ne!(s, t);
    // Upper bound on the max flow: capacity out of s.
    let cap_s: f64 = g.arcs(s).map(|(_, w, _)| w).sum();
    let cap_t: f64 = g.arcs(t).map(|(_, w, _)| w).sum();
    let mut hi = cap_s.min(cap_t);
    let mut lo = 0.0f64;
    let max_iterations = ((1.0 / eps).ceil() as usize * 8).clamp(8, 120);

    let mut best_flow = vec![0.0; g.m()];
    let mut best_value = 0.0;
    let mut best_cong = 0.0;
    let mut total_iters = 0usize;

    for _ in 0..search_steps {
        let target = 0.5 * (lo + hi);
        if target <= 1e-12 {
            break;
        }
        match mwu_phase(g, s, t, target, eps, max_iterations) {
            Some((flow, cong, iters)) if cong <= 1.0 + 2.0 * eps => {
                total_iters += iters;
                // Feasible (after scaling); remember and try higher.
                let scale = if cong > 1.0 { 1.0 / cong } else { 1.0 };
                best_flow = flow.iter().map(|f| f * scale).collect();
                best_value = target * scale;
                best_cong = cong.min(1.0);
                lo = target;
            }
            Some((_, _, iters)) => {
                total_iters += iters;
                hi = target;
            }
            None => {
                hi = target;
            }
        }
    }

    ApproxMaxFlowResult {
        flow_value: best_value,
        edge_flow: best_flow,
        max_congestion: best_cong,
        iterations: total_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;
    use parsdd_graph::{Edge, Graph};

    #[test]
    fn exact_flow_on_path_and_parallel() {
        let g = generators::path(5, 3.0);
        assert!((exact_max_flow(&g, 0, 4) - 3.0).abs() < 1e-9);
        let g2 = Graph::from_edges(2, vec![Edge::new(0, 1, 1.0), Edge::new(0, 1, 2.5)]);
        assert!((exact_max_flow(&g2, 0, 1) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn exact_flow_respects_bottleneck() {
        // Two wide sides connected by a single capacity-1 bridge.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            edges.push(Edge::new(0, 1 + i, 10.0));
            edges.push(Edge::new(5 + i, 9, 10.0));
        }
        edges.push(Edge::new(1, 5, 1.0)); // bridge
        let g = Graph::from_edges(10, edges);
        assert!((exact_max_flow(&g, 0, 9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approx_flow_close_to_exact_on_small_grid() {
        let g = generators::grid2d(5, 5, |_, _| 1.0);
        let s = 0u32;
        let t = (g.n() - 1) as u32;
        let exact = exact_max_flow(&g, s, t);
        let approx = approx_max_flow(&g, s, t, 0.2, 8);
        assert!(
            approx.flow_value >= 0.5 * exact,
            "approx {} vs exact {exact}",
            approx.flow_value
        );
        assert!(approx.flow_value <= exact + 1e-6);
        assert!(approx.max_congestion <= 1.0 + 1e-6);
        // Flow conservation at internal vertices.
        let mut net = vec![0.0f64; g.n()];
        for (e, &f) in g.edges().iter().zip(&approx.edge_flow) {
            net[e.u as usize] -= f;
            net[e.v as usize] += f;
        }
        for v in 0..g.n() as u32 {
            if v != s && v != t {
                assert!(
                    net[v as usize].abs() < 1e-4,
                    "conservation at {v}: {}",
                    net[v as usize]
                );
            }
        }
    }

    #[test]
    fn approx_flow_two_disjoint_paths() {
        // Two vertex-disjoint unit paths from s to t: max flow 2.
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 5, 1.0),
            Edge::new(0, 3, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(4, 5, 1.0),
        ];
        let g = Graph::from_edges(6, edges);
        let exact = exact_max_flow(&g, 0, 5);
        assert!((exact - 2.0).abs() < 1e-9);
        let approx = approx_max_flow(&g, 0, 5, 0.15, 10);
        assert!(approx.flow_value >= 1.2, "approx {}", approx.flow_value);
    }
}
