//! Discrete Poisson problems on grids.
//!
//! The paper's introduction motivates SDD solvers with problems "in vision
//! and graphics"; their common kernel is the discrete Poisson equation
//! `L x = b` on a 2-D or 3-D lattice. This module packages grid Poisson
//! problems (point sources/sinks, smooth charge distributions) so the
//! examples and experiments can exercise the solver on the workload class
//! the paper targets.

use parsdd_graph::{generators, Graph};
use parsdd_linalg::vector::project_out_constant;
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

/// A discrete Poisson problem on a 2-D grid.
#[derive(Debug, Clone)]
pub struct PoissonProblem {
    /// The grid graph.
    pub graph: Graph,
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// The right-hand side (charge distribution), balanced to sum zero.
    pub rhs: Vec<f64>,
}

impl PoissonProblem {
    /// A uniform-conductance grid with a point source and a point sink at
    /// opposite corners.
    pub fn dipole(rows: usize, cols: usize) -> Self {
        let graph = generators::grid2d(rows, cols, |_, _| 1.0);
        let mut rhs = vec![0.0; rows * cols];
        rhs[0] = 1.0;
        rhs[rows * cols - 1] = -1.0;
        PoissonProblem {
            graph,
            rows,
            cols,
            rhs,
        }
    }

    /// A grid with smoothly varying conductances (a synthetic "image") and
    /// a sinusoidal charge distribution — closer to the vision workloads.
    pub fn smooth(rows: usize, cols: usize) -> Self {
        let graph = generators::grid2d(rows, cols, |u, v| {
            let (u, v) = (u as f64, v as f64);
            1.0 + 0.5 * ((u * 0.13).sin() + (v * 0.07).cos()).abs()
        });
        let mut rhs: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f64;
                let c = (i % cols) as f64;
                (r * 0.3).sin() * (c * 0.2).cos()
            })
            .collect();
        project_out_constant(&mut rhs);
        PoissonProblem {
            graph,
            rows,
            cols,
            rhs,
        }
    }

    /// Solves the problem with default solver options; returns the
    /// potential field.
    pub fn solve(&self) -> Vec<f64> {
        let solver = SddSolver::new_laplacian(&self.graph, SddSolverOptions::default());
        solver.solve(&self.rhs).x
    }

    /// Solves with a caller-supplied solver (so a prebuilt chain can be
    /// reused across right-hand sides).
    pub fn solve_with(&self, solver: &SddSolver) -> Vec<f64> {
        solver.solve(&self.rhs).x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_linalg::laplacian::LaplacianOp;
    use parsdd_linalg::operator::LinearOperator;
    use parsdd_linalg::vector::norm2;

    #[test]
    fn dipole_solution_monotone_along_diagonal() {
        let p = PoissonProblem::dipole(12, 12);
        let x = p.solve();
        // Potential at the source is the maximum, at the sink the minimum.
        let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (x[0] - max).abs() < 1e-9,
            "source potential should be the max"
        );
        assert!(
            (x[p.rows * p.cols - 1] - min).abs() < 1e-9,
            "sink potential should be the min"
        );
    }

    #[test]
    fn smooth_problem_residual_small() {
        let p = PoissonProblem::smooth(20, 15);
        let x = p.solve();
        let op = LaplacianOp::new(&p.graph);
        let r = op.residual(&x, &p.rhs);
        assert!(norm2(&r) <= 1e-6 * norm2(&p.rhs));
    }

    #[test]
    fn rhs_is_balanced() {
        let p = PoissonProblem::smooth(10, 10);
        assert!(p.rhs.iter().sum::<f64>().abs() < 1e-9);
        let d = PoissonProblem::dipole(5, 5);
        assert!(d.rhs.iter().sum::<f64>().abs() < 1e-12);
    }
}
