//! Electrical flows and potentials.
//!
//! Treating a weighted graph as a resistor network (conductance = edge
//! weight), the potentials induced by injecting one unit of current at `s`
//! and extracting it at `t` are the solution of `L φ = χ_s − χ_t`; the
//! current on edge `{u,v}` is `w_e (φ_u − φ_v)` and the `s`–`t` effective
//! resistance is `φ_s − φ_t`. One SDD solve per electrical flow — this is
//! the inner loop of the approximate max-flow algorithm of [CKM+10] that
//! the paper lists among its applications.

use parsdd_graph::{Graph, VertexId};
use parsdd_solver::sdd_solve::SddSolver;

/// An electrical flow between two terminals.
#[derive(Debug, Clone)]
pub struct ElectricalFlow {
    /// Vertex potentials `φ` (defined up to an additive constant).
    pub potentials: Vec<f64>,
    /// Signed current on every edge, oriented from `edge.u` to `edge.v`.
    pub edge_flow: Vec<f64>,
    /// Effective resistance between the terminals.
    pub effective_resistance: f64,
    /// Energy `Σ_e f_e²/w_e` of the flow (equals the effective resistance
    /// for a unit injection).
    pub energy: f64,
    /// Whether the underlying solve converged.
    pub converged: bool,
}

/// Computes the unit-current electrical flow from `s` to `t` on `g`, using
/// a prebuilt [`SddSolver`] for the Laplacian of `g` — the one-pair case
/// of [`electrical_flows`].
pub fn electrical_flow(g: &Graph, solver: &SddSolver, s: VertexId, t: VertexId) -> ElectricalFlow {
    electrical_flows(g, solver, &[(s, t)])
        .pop()
        .expect("one terminal pair in, one flow out")
}

/// Computes the unit-current electrical flows of many terminal pairs
/// against the same prebuilt solver, batching all injection vectors
/// through [`SddSolver::solve_many`] — the many-flow inner loop of the
/// [CKM+10] max-flow scheme as one blocked pass per iteration instead of
/// one chain traversal per pair.
pub fn electrical_flows(
    g: &Graph,
    solver: &SddSolver,
    pairs: &[(VertexId, VertexId)],
) -> Vec<ElectricalFlow> {
    let n = g.n();
    let rhs: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(s, t)| {
            assert_ne!(s, t, "terminals must differ");
            let mut b = vec![0.0; n];
            b[s as usize] = 1.0;
            b[t as usize] = -1.0;
            b
        })
        .collect();
    let outs = solver.solve_many(&rhs);
    pairs
        .iter()
        .zip(outs)
        .map(|(&(s, t), out)| {
            let potentials = out.x;
            let edge_flow: Vec<f64> = g
                .edges()
                .iter()
                .map(|e| e.w * (potentials[e.u as usize] - potentials[e.v as usize]))
                .collect();
            let effective_resistance = potentials[s as usize] - potentials[t as usize];
            let energy: f64 = g
                .edges()
                .iter()
                .zip(&edge_flow)
                .map(|(e, f)| f * f / e.w)
                .sum();
            ElectricalFlow {
                potentials,
                edge_flow,
                effective_resistance,
                energy,
                converged: out.converged,
            }
        })
        .collect()
}

/// Verifies flow conservation: net flow out of every vertex must equal the
/// injected current (`+1` at `s`, `−1` at `t`, `0` elsewhere). Returns the
/// maximum conservation violation.
pub fn conservation_violation(g: &Graph, flow: &ElectricalFlow, s: VertexId, t: VertexId) -> f64 {
    let mut net = vec![0.0f64; g.n()];
    for (e, &f) in g.edges().iter().zip(&flow.edge_flow) {
        net[e.u as usize] -= f;
        net[e.v as usize] += f;
    }
    net[s as usize] += 1.0;
    net[t as usize] -= 1.0;
    net.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;
    use parsdd_solver::sdd_solve::SddSolverOptions;

    fn solver_for(g: &Graph) -> SddSolver {
        SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-10))
    }

    #[test]
    fn series_resistors() {
        // Path of 4 unit-conductance edges: s=0, t=4, R_eff = 4.
        let g = generators::path(5, 1.0);
        let solver = solver_for(&g);
        let f = electrical_flow(&g, &solver, 0, 4);
        assert!(f.converged);
        assert!((f.effective_resistance - 4.0).abs() < 1e-6);
        // All edges carry the full unit of current.
        for &fe in &f.edge_flow {
            assert!((fe.abs() - 1.0).abs() < 1e-6);
        }
        assert!(conservation_violation(&g, &f, 0, 4) < 1e-6);
    }

    #[test]
    fn parallel_resistors() {
        // Two parallel unit edges between 0 and 1: R_eff = 1/2, each edge
        // carries half of the current.
        use parsdd_graph::{Edge, Graph};
        let g = Graph::from_edges(2, vec![Edge::new(0, 1, 1.0), Edge::new(0, 1, 1.0)]);
        let solver = solver_for(&g);
        let f = electrical_flow(&g, &solver, 0, 1);
        assert!((f.effective_resistance - 0.5).abs() < 1e-6);
        assert!((f.edge_flow[0] - 0.5).abs() < 1e-6);
        assert!((f.edge_flow[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn grid_flow_conservation_and_energy() {
        let g = generators::grid2d(12, 12, |_, _| 1.0);
        let solver = solver_for(&g);
        let f = electrical_flow(&g, &solver, 0, (g.n() - 1) as u32);
        assert!(f.converged);
        assert!(conservation_violation(&g, &f, 0, (g.n() - 1) as u32) < 1e-5);
        // Energy equals effective resistance for a unit injection.
        assert!((f.energy - f.effective_resistance).abs() < 1e-5);
        // Thomson's principle: the electrical energy is at most that of any
        // unit s-t flow, e.g. one routed along a single shortest path of
        // length 22 (energy 22).
        assert!(f.energy <= 22.0 + 1e-6);
    }

    #[test]
    fn batched_flows_match_single_flows_bitwise() {
        let g = generators::grid2d(9, 9, |_, _| 1.0);
        let solver = solver_for(&g);
        let pairs = [(0u32, 80u32), (4, 76), (0, 8)];
        let batched = electrical_flows(&g, &solver, &pairs);
        for (&(s, t), flow) in pairs.iter().zip(&batched) {
            let single = electrical_flow(&g, &solver, s, t);
            assert_eq!(flow.converged, single.converged);
            assert_eq!(
                flow.effective_resistance.to_bits(),
                single.effective_resistance.to_bits()
            );
            for (a, b) in flow.potentials.iter().zip(&single.potentials) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(conservation_violation(&g, flow, s, t) < 1e-6);
        }
    }

    #[test]
    fn wheatstone_bridge_symmetry() {
        // Symmetric bridge: no current through the bridge edge.
        use parsdd_graph::{Edge, Graph};
        let g = Graph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0), // s - a
                Edge::new(0, 2, 1.0), // s - b
                Edge::new(1, 3, 1.0), // a - t
                Edge::new(2, 3, 1.0), // b - t
                Edge::new(1, 2, 5.0), // bridge a - b
            ],
        );
        let solver = solver_for(&g);
        let f = electrical_flow(&g, &solver, 0, 3);
        assert!(
            f.edge_flow[4].abs() < 1e-6,
            "bridge current {}",
            f.edge_flow[4]
        );
        assert!((f.effective_resistance - 1.0).abs() < 1e-6);
    }
}
