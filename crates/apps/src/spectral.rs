//! Fiedler vectors and spectral partitioning.
//!
//! The Fiedler vector (eigenvector of the second-smallest Laplacian
//! eigenvalue) is computed by **block orthogonalized inverse iteration**
//! (subspace iteration): a small block of vectors is pushed through
//! `L⁺` together — all solves of one step batched through
//! [`SddSolver::solve_many`], so the chain streams its matrices once per
//! block — then re-orthogonalised against the constant vector and against
//! each other by modified Gram–Schmidt. The block converges to the
//! bottom of the nonzero spectrum; the column with the smallest Rayleigh
//! quotient is the Fiedler estimate (and the extra columns guard against
//! a near-degenerate λ₂/λ₃ gap, where single-vector iteration stalls).
//! Spectral bisection thresholds the Fiedler vector at its median — one
//! of the classic "eigenvector computation" applications the paper's
//! introduction mentions.

use parsdd_graph::{Graph, VertexId};
use parsdd_linalg::laplacian::laplacian_quadratic_form;
use parsdd_linalg::vector::{axpy, dot, norm2, project_out_constant, scale};
use parsdd_solver::sdd_solve::SddSolver;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Width of the inverse-iteration block: enough spare directions to
/// separate λ₂ from a close λ₃ while keeping the per-step batch small.
const FIEDLER_BLOCK: usize = 4;

/// Result of the Fiedler computation.
#[derive(Debug, Clone)]
pub struct FiedlerResult {
    /// The (approximate) Fiedler vector, unit norm, orthogonal to 1.
    pub vector: Vec<f64>,
    /// The Rayleigh quotient `xᵀLx / xᵀx` — an estimate of the algebraic
    /// connectivity `λ₂`.
    pub lambda2: f64,
    /// Inverse-power iterations performed.
    pub iterations: usize,
}

/// Modified Gram–Schmidt against the constant vector and the previous
/// columns; drops columns that become (numerically) dependent. Sequential
/// per column with width-independent reductions, so the basis is bitwise
/// reproducible at every pool width.
fn orthonormalize(block: &mut Vec<Vec<f64>>) {
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(block.len());
    for mut v in block.drain(..) {
        project_out_constant(&mut v);
        for u in &kept {
            let c = dot(&v, u);
            axpy(-c, u, &mut v);
        }
        let nrm = norm2(&v);
        if nrm > 1e-300 {
            scale(1.0 / nrm, &mut v);
            kept.push(v);
        }
    }
    *block = kept;
}

/// Computes an approximate Fiedler vector of `g` by block orthogonalized
/// inverse iteration with the given solver (one batched
/// [`SddSolver::solve_many`] call per iteration).
pub fn fiedler_vector(
    g: &Graph,
    solver: &SddSolver,
    iterations: usize,
    seed: u64,
) -> FiedlerResult {
    let n = g.n();
    let width = FIEDLER_BLOCK.min(n.saturating_sub(1)).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut block: Vec<Vec<f64>> = (0..width)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    orthonormalize(&mut block);
    if block.is_empty() {
        // Degenerate graph (no direction orthogonal to 1): λ₂ undefined.
        return FiedlerResult {
            vector: vec![0.0; n],
            lambda2: 0.0,
            iterations: 0,
        };
    }
    let mut iters = 0;
    for _ in 0..iterations {
        iters += 1;
        let outs = solver.solve_many(&block);
        let mut next: Vec<Vec<f64>> = outs.into_iter().map(|o| o.x).collect();
        orthonormalize(&mut next);
        if next.is_empty() {
            break;
        }
        block = next;
    }
    // The basis spans the bottom of the nonzero spectrum; pick the column
    // with the smallest Rayleigh quotient as the Fiedler estimate.
    let (mut best, mut best_lambda) = (0usize, f64::INFINITY);
    for (j, v) in block.iter().enumerate() {
        let lambda = laplacian_quadratic_form(g, v) / dot(v, v).max(1e-300);
        if lambda < best_lambda {
            best = j;
            best_lambda = lambda;
        }
    }
    FiedlerResult {
        vector: block.swap_remove(best),
        lambda2: best_lambda,
        iterations: iters,
    }
}

/// Spectral bisection: splits the vertices at the median Fiedler value.
/// Returns the side assignment (false/true) and the conductance of the cut.
pub fn spectral_bisection(g: &Graph, fiedler: &FiedlerResult) -> (Vec<bool>, f64) {
    let n = g.n();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by(|&a, &b| {
        fiedler.vector[a as usize]
            .partial_cmp(&fiedler.vector[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut side = vec![false; n];
    for &v in order.iter().take(n / 2) {
        side[v as usize] = true;
    }
    (side.clone(), cut_conductance(g, &side))
}

/// Conductance of a cut: `w(cut) / min(vol(S), vol(V∖S))` with weighted
/// degrees as volumes.
pub fn cut_conductance(g: &Graph, side: &[bool]) -> f64 {
    let mut cut = 0.0;
    for e in g.edges() {
        if side[e.u as usize] != side[e.v as usize] {
            cut += e.w;
        }
    }
    let mut vol_s = 0.0;
    let mut vol_rest = 0.0;
    for (v, &s) in side.iter().enumerate() {
        let d = g.weighted_degree(v as u32);
        if s {
            vol_s += d;
        } else {
            vol_rest += d;
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom <= 0.0 {
        1.0
    } else {
        cut / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;
    use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

    fn solver_for(g: &Graph) -> SddSolver {
        SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-10))
    }

    #[test]
    fn path_lambda2_matches_formula() {
        // λ₂ of the path P_n with unit weights is 2(1 − cos(π/n)).
        let n = 24;
        let g = generators::path(n, 1.0);
        let solver = solver_for(&g);
        let f = fiedler_vector(&g, &solver, 60, 3);
        let expected = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!(
            (f.lambda2 - expected).abs() < 0.05 * expected,
            "lambda2 {} vs expected {expected}",
            f.lambda2
        );
    }

    #[test]
    fn barbell_bisection_finds_the_bridge() {
        // Two K_8 cliques joined by one path: the natural cut severs the
        // bridge, conductance ≈ 1/vol(K_8).
        let g = generators::barbell(8, 2, 1.0);
        let solver = solver_for(&g);
        let f = fiedler_vector(&g, &solver, 80, 5);
        let (side, conductance) = spectral_bisection(&g, &f);
        // The two cliques end up on opposite sides.
        let clique_a_side = side[0];
        for &s in &side[1..8] {
            assert_eq!(s, clique_a_side, "clique A split by spectral cut");
        }
        let clique_b_start = 8 + 2;
        let clique_b_side = side[clique_b_start];
        for &s in &side[clique_b_start..clique_b_start + 8] {
            assert_eq!(s, clique_b_side, "clique B split by spectral cut");
        }
        assert_ne!(clique_a_side, clique_b_side);
        assert!(conductance < 0.1, "conductance {conductance}");
    }

    #[test]
    fn conductance_of_trivial_cuts() {
        let g = generators::cycle(10, 1.0);
        assert_eq!(cut_conductance(&g, &[false; 10]), 1.0);
        let mut half = vec![false; 10];
        for item in half.iter_mut().take(5) {
            *item = true;
        }
        // Contiguous half of a cycle: 2 cut edges, volume 10.
        assert!((cut_conductance(&g, &half) - 0.2).abs() < 1e-12);
    }
}
