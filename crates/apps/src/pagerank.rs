//! PageRank and weighted-adjacency SpMV over the frontier traversal core.
//!
//! This is the Ligra `SPMV_F`/`edgeMap` workload ported onto
//! [`edge_map`]: each iteration is one edge map of
//! the full vertex frontier, accumulating `Σ w(u,v) · x(u)` into every
//! destination. Floating-point accumulation is *not* a commutative-
//! deterministic atomic, so the map is pinned to the dense-pull direction:
//! there each destination's arcs are scanned sequentially in CSR order by
//! the single task that owns it, making the result bitwise identical at
//! every pool width — the same determinism contract the solver pins.
//!
//! Runs on any [`CsrLike`] graph: [`Graph`](parsdd_graph::Graph), the lean
//! [`Csr`](parsdd_graph::Csr), and the zero-copy mmap view of a binary CSR
//! file, so billion-arc PageRank never needs the solver-grade
//! representation.

use parsdd_graph::{edge_map, CsrLike, Direction, EdgeMapOp, EdgeMapOptions, Frontier, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// `y[dst] += w · x[src]` over every arc. Correct only under dense pull
/// (exclusive destination ownership); the atomic variant exists to satisfy
/// the trait but is never reached because callers force
/// [`Direction::DensePull`].
struct SpmvOp<'a> {
    x: &'a [f64],
    y: &'a [AtomicU64],
}

impl EdgeMapOp for SpmvOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, w: f64, _arc: usize) -> bool {
        let slot = &self.y[dst as usize];
        // The dense-pull task owns `dst`, so this load/store pair is a
        // plain read-modify-write in arc order — deterministic.
        let cur = f64::from_bits(slot.load(Ordering::Relaxed));
        slot.store(
            (cur + w * self.x[src as usize]).to_bits(),
            Ordering::Relaxed,
        );
        true
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f64, _arc: usize) -> bool {
        // CAS-loop add: mathematically correct under contention but not
        // bitwise order-invariant; kept for trait completeness only.
        let slot = &self.y[dst as usize];
        let add = w * self.x[src as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match slot.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    #[inline]
    fn cond(&self, _dst: VertexId) -> bool {
        true
    }
}

/// Weighted-adjacency sparse matrix–vector product `y = A·x` (one
/// [`edge_map`] of the full frontier, dense-pull pinned). Bitwise
/// deterministic at every pool width.
pub fn spmv<G: CsrLike>(g: &G, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), g.n());
    let y: Vec<AtomicU64> = (0..g.n())
        .into_par_iter()
        .with_min_len(4096)
        .map(|_| AtomicU64::new(0f64.to_bits()))
        .collect();
    let op = SpmvOp { x, y: &y };
    let options = EdgeMapOptions {
        forced: Some(Direction::DensePull),
        ..Default::default()
    };
    edge_map(g, &Frontier::all(g.n()), &op, options);
    y.into_par_iter()
        .with_min_len(4096)
        .map(|v| f64::from_bits(v.into_inner()))
        .collect()
}

/// Result of a [`pagerank`] run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Per-vertex rank; sums to 1 over each connected region that holds
    /// any mass.
    pub ranks: Vec<f64>,
    /// Power iterations executed.
    pub iterations: usize,
    /// L1 distance between the last two iterates.
    pub l1_delta: f64,
    /// Whether `l1_delta ≤ tol` was reached within the iteration budget.
    pub converged: bool,
}

/// Weighted PageRank with damping `d`: iterates
/// `p ← (1 − d)/n + d · Aᵀ D⁻¹ p` (weighted-degree normalisation) until
/// the L1 change drops to `tol` or `max_iters` is hit. One dense-pull
/// [`edge_map`] per iteration; bitwise deterministic at every pool width.
pub fn pagerank<G: CsrLike>(g: &G, damping: f64, tol: f64, max_iters: usize) -> PageRankResult {
    assert!((0.0..1.0).contains(&damping));
    let n = g.n();
    if n == 0 {
        return PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            l1_delta: 0.0,
            converged: true,
        };
    }
    // Weighted out-degree reciprocals (isolated vertices keep 0: their
    // mass share is re-injected uniformly by the teleport term only).
    let inv_deg: Vec<f64> = (0..n)
        .into_par_iter()
        .with_min_len(1024)
        .map(|v| {
            let (lo, hi) = g.arc_range(v as VertexId);
            let wd: f64 = g.arc_weights()[lo..hi].iter().sum();
            if wd > 0.0 {
                1.0 / wd
            } else {
                0.0
            }
        })
        .collect();
    let teleport = (1.0 - damping) / n as f64;
    let mut p = vec![1.0 / n as f64; n];
    let mut iterations = 0;
    let mut l1_delta = f64::INFINITY;
    while iterations < max_iters && l1_delta > tol {
        // x = D⁻¹ p, then one SpMV gathers Σ w·x over in-arcs.
        let x: Vec<f64> = p
            .par_iter()
            .zip(inv_deg.par_iter())
            .with_min_len(4096)
            .map(|(&pv, &idv)| pv * idv)
            .collect();
        let gathered = spmv(g, &x);
        let next: Vec<f64> = gathered
            .into_par_iter()
            .with_min_len(4096)
            .map(|s| teleport + damping * s)
            .collect();
        // Shim reductions use input-length-only split trees, so this sum
        // is bitwise reproducible at every width.
        l1_delta = next
            .par_iter()
            .zip(p.par_iter())
            .with_min_len(4096)
            .map(|(a, b)| (a - b).abs())
            .sum();
        p = next;
        iterations += 1;
    }
    PageRankResult {
        converged: l1_delta <= tol,
        ranks: p,
        iterations,
        l1_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::{generators, Csr, Graph};

    fn spmv_reference(g: &Graph, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; g.n()];
        for v in 0..g.n() as VertexId {
            // Same order as the dense pull: v's arcs in CSR order.
            let (lo, hi) = g.arc_range(v);
            let mut acc = 0.0;
            for a in lo..hi {
                acc += g.arc_weights()[a] * x[g.arc_targets()[a] as usize];
            }
            y[v as usize] = acc;
        }
        y
    }

    #[test]
    fn spmv_matches_sequential_reference_bitwise() {
        let g = generators::weighted_random_graph(300, 900, 0.5, 4.0, 7);
        let x: Vec<f64> = (0..g.n()).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let y = spmv(&g, &x);
        let r = spmv_reference(&g, &x);
        for (a, b) in y.iter().zip(&r) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Same answer off the lean CSR.
        let c = Csr::from_graph(&g);
        let yc = spmv(&c, &x);
        for (a, b) in yc.iter().zip(&y) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pagerank_converges_and_sums_to_one() {
        let g = generators::weighted_random_graph(500, 1800, 1.0, 3.0, 13);
        let pr = pagerank(&g, 0.85, 1e-10, 200);
        assert!(pr.converged, "l1 delta {}", pr.l1_delta);
        assert!(pr.iterations > 2);
        let total: f64 = pr.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        assert!(pr.ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_ranks_follow_degree_on_stars() {
        // Hub of a star concentrates rank mass.
        let g = generators::star(50, 1.0);
        let pr = pagerank(&g, 0.85, 1e-12, 300);
        assert!(pr.converged);
        let hub = pr.ranks[0];
        let leaf = pr.ranks[1];
        assert!(hub > 10.0 * leaf, "hub {hub} vs leaf {leaf}");
        // All leaves identical by symmetry.
        for &r in &pr.ranks[1..] {
            assert_eq!(r.to_bits(), leaf.to_bits());
        }
    }

    #[test]
    fn pagerank_is_width_deterministic() {
        let g = generators::weighted_random_graph(400, 1400, 0.5, 5.0, 21);
        let base = pagerank(&g, 0.85, 1e-9, 120);
        for threads in [1usize, 2, 4] {
            let pr = parsdd_graph::parutil::with_threads(threads, || pagerank(&g, 0.85, 1e-9, 120));
            assert_eq!(pr.iterations, base.iterations, "width {threads}");
            for (a, b) in pr.ranks.iter().zip(&base.ranks) {
                assert_eq!(a.to_bits(), b.to_bits(), "width {threads}");
            }
        }
    }

    #[test]
    fn pagerank_handles_isolated_vertices() {
        use parsdd_graph::Edge;
        // Two-vertex edge plus two isolated vertices: isolated ranks decay
        // to the pure teleport share; no NaNs from zero degrees.
        let g = Graph::from_edges(4, vec![Edge::new(0, 1, 1.0)]);
        let pr = pagerank(&g, 0.85, 1e-12, 500);
        assert!(pr.ranks.iter().all(|r| r.is_finite()));
        let teleport = 0.15 / 4.0;
        assert!((pr.ranks[2] - teleport).abs() < 1e-10);
        assert!(pr.ranks[0] > pr.ranks[2]);
    }
}
