//! Harmonic interpolation (discrete Dirichlet problems).
//!
//! Given boundary vertices with fixed values, the harmonic extension
//! assigns every interior vertex the weighted average of its neighbours —
//! equivalently it solves the grounded Laplacian system
//! `L_II x_I = -L_IB x_B`, where `L_II` is the Laplacian restricted to the
//! interior (an SDDM matrix). This is the computational core of Poisson
//! image editing, semi-supervised label propagation and electrical-network
//! voltage problems, and exercises the solver's SDD (not just Laplacian)
//! path via Gremban's reduction.

use std::collections::HashMap;

use parsdd_graph::{Graph, VertexId};
use parsdd_linalg::csr::CsrMatrix;
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

/// Result of a harmonic interpolation.
#[derive(Debug, Clone)]
pub struct HarmonicResult {
    /// The full vertex assignment (boundary values copied verbatim,
    /// interior values solved).
    pub values: Vec<f64>,
    /// Whether the interior solve converged.
    pub converged: bool,
    /// Maximum violation of the mean-value property over interior vertices
    /// (`|x_v − weighted mean of neighbours|`), a direct quality check.
    pub max_mean_value_violation: f64,
}

/// Computes the harmonic extension of `boundary` (vertex → value) to the
/// rest of `g`.
///
/// Interior vertices in components containing no boundary vertex are
/// assigned 0. Panics if `boundary` is empty or references vertices out of
/// range. The `k = 1` case of
/// [`harmonic_interpolation_many`] — one boundary assignment, one solve.
pub fn harmonic_interpolation(
    g: &Graph,
    boundary: &HashMap<VertexId, f64>,
    options: SddSolverOptions,
) -> HarmonicResult {
    harmonic_interpolation_many(g, std::slice::from_ref(boundary), options)
        .pop()
        .expect("one boundary assignment in, one result out")
}

/// Computes the harmonic extensions of many boundary *assignments* over
/// the same boundary *vertex set*: the grounded system `L_II` is
/// assembled and factored into a preconditioner chain **once**, and all
/// right-hand sides `−L_IB x_B` are answered by one batched
/// [`SddSolver::solve_many`] call — the many-Dirichlet-problem workload
/// of Poisson image editing (one channel per assignment) and
/// label propagation (one indicator per class).
///
/// Every map in `boundaries` must fix the same vertex set (the values may
/// differ freely). Panics if `boundaries` is empty, a map is empty, key
/// sets differ, or a vertex is out of range.
pub fn harmonic_interpolation_many(
    g: &Graph,
    boundaries: &[HashMap<VertexId, f64>],
    options: SddSolverOptions,
) -> Vec<HarmonicResult> {
    let first = boundaries.first().expect("need at least one assignment");
    assert!(!first.is_empty(), "need at least one boundary vertex");
    let n = g.n();
    for boundary in boundaries {
        assert_eq!(
            boundary.len(),
            first.len(),
            "all assignments must fix the same boundary vertex set"
        );
        for &v in boundary.keys() {
            assert!((v as usize) < n, "boundary vertex {v} out of range");
            assert!(
                first.contains_key(&v),
                "all assignments must fix the same boundary vertex set"
            );
        }
    }
    // Interior numbering (shared by every assignment).
    let mut interior: Vec<VertexId> = (0..n as VertexId)
        .filter(|v| !first.contains_key(v))
        .collect();
    interior.sort_unstable();
    let mut interior_index = vec![u32::MAX; n];
    for (i, &v) in interior.iter().enumerate() {
        interior_index[v as usize] = i as u32;
    }

    let mut all_values: Vec<Vec<f64>> = boundaries
        .iter()
        .map(|boundary| {
            let mut values = vec![0.0f64; n];
            for (&v, &val) in boundary {
                values[v as usize] = val;
            }
            values
        })
        .collect();
    if interior.is_empty() {
        return all_values
            .into_iter()
            .map(|values| HarmonicResult {
                values,
                converged: true,
                max_mean_value_violation: 0.0,
            })
            .collect();
    }

    // Assemble L_II (SDDM: Laplacian of the interior-induced subgraph plus
    // the diagonal contribution of edges to the boundary) once, and one
    // right-hand side -L_IB x_B per assignment.
    let k = interior.len();
    let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
    let mut rhs: Vec<Vec<f64>> = vec![vec![0.0f64; k]; boundaries.len()];
    for (i, &v) in interior.iter().enumerate() {
        let mut diag = 0.0;
        for (u, w, _e) in g.arcs(v) {
            diag += w;
            match interior_index[u as usize] {
                u32::MAX => {
                    // Boundary neighbour contributes to every rhs.
                    for (b, values) in rhs.iter_mut().zip(&all_values) {
                        b[i] += w * values[u as usize];
                    }
                }
                j => {
                    triplets.push((i as u32, j, -w));
                }
            }
        }
        triplets.push((i as u32, i as u32, diag));
    }
    let l_ii = CsrMatrix::from_triplets(k, k, &triplets);
    let solver = SddSolver::new_sdd(&l_ii, options);
    let outs = solver.solve_many(&rhs);

    outs.into_iter()
        .zip(all_values.iter_mut())
        .map(|(out, values)| {
            for (i, &v) in interior.iter().enumerate() {
                values[v as usize] = out.x[i];
            }
            // Mean-value property check.
            let mut max_violation = 0.0f64;
            for &v in &interior {
                let mut num = 0.0;
                let mut den = 0.0;
                for (u, w, _e) in g.arcs(v) {
                    num += w * values[u as usize];
                    den += w;
                }
                if den > 0.0 {
                    max_violation = max_violation.max((values[v as usize] - num / den).abs());
                }
            }
            HarmonicResult {
                values: std::mem::take(values),
                converged: out.converged,
                max_mean_value_violation: max_violation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;

    #[test]
    fn path_interpolates_linearly() {
        // Fix the two endpoints of a path at 0 and 1: the harmonic
        // extension is linear.
        let n = 11;
        let g = generators::path(n, 1.0);
        let mut boundary = HashMap::new();
        boundary.insert(0u32, 0.0);
        boundary.insert((n - 1) as u32, 1.0);
        let res = harmonic_interpolation(&g, &boundary, SddSolverOptions::default());
        assert!(res.converged);
        for v in 0..n {
            let expected = v as f64 / (n - 1) as f64;
            assert!(
                (res.values[v] - expected).abs() < 1e-6,
                "vertex {v}: {} vs {expected}",
                res.values[v]
            );
        }
        assert!(res.max_mean_value_violation < 1e-6);
    }

    #[test]
    fn grid_dirichlet_respects_maximum_principle() {
        let g = generators::grid2d(15, 15, |_, _| 1.0);
        let mut boundary = HashMap::new();
        // Left column fixed at 0, right column fixed at 5.
        for r in 0..15u32 {
            boundary.insert(r * 15, 0.0);
            boundary.insert(r * 15 + 14, 5.0);
        }
        let res = harmonic_interpolation(&g, &boundary, SddSolverOptions::default());
        assert!(res.converged);
        // Maximum principle: interior values lie strictly between the
        // boundary extremes.
        for (v, &x) in res.values.iter().enumerate() {
            if !boundary.contains_key(&(v as u32)) {
                assert!(x > -1e-9 && x < 5.0 + 1e-9, "vertex {v} value {x}");
            }
        }
        assert!(res.max_mean_value_violation < 1e-5);
        // Symmetry: the middle column sits near 2.5.
        let mid = res.values[7 * 15 + 7];
        assert!((mid - 2.5).abs() < 0.05, "centre value {mid}");
    }

    #[test]
    fn many_assignments_match_single_calls_bitwise() {
        let g = generators::grid2d(10, 10, |_, _| 1.0);
        // Three assignments over the same boundary set (two grid corners).
        let assignments: Vec<HashMap<u32, f64>> = (0..3)
            .map(|s| {
                let mut b = HashMap::new();
                b.insert(0u32, s as f64);
                b.insert(99u32, 5.0 - s as f64);
                b
            })
            .collect();
        let batched = harmonic_interpolation_many(&g, &assignments, SddSolverOptions::default());
        for (boundary, res) in assignments.iter().zip(&batched) {
            let single = harmonic_interpolation(&g, boundary, SddSolverOptions::default());
            assert_eq!(res.converged, single.converged);
            for (a, b) in res.values.iter().zip(&single.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "same boundary vertex set")]
    fn mismatched_boundary_sets_rejected() {
        let g = generators::path(5, 1.0);
        let mut b1 = HashMap::new();
        b1.insert(0u32, 1.0);
        let mut b2 = HashMap::new();
        b2.insert(4u32, 1.0);
        let _ = harmonic_interpolation_many(&g, &[b1, b2], SddSolverOptions::default());
    }

    #[test]
    fn all_boundary_is_identity() {
        let g = generators::cycle(6, 1.0);
        let mut boundary = HashMap::new();
        for v in 0..6u32 {
            boundary.insert(v, v as f64);
        }
        let res = harmonic_interpolation(&g, &boundary, SddSolverOptions::default());
        assert_eq!(res.values, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(res.max_mean_value_violation, 0.0);
    }

    #[test]
    fn component_without_boundary_gets_zero() {
        use parsdd_graph::{Edge, Graph};
        let g = Graph::from_edges(
            5,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(3, 4, 1.0),
            ],
        );
        let mut boundary = HashMap::new();
        boundary.insert(0u32, 2.0);
        let res = harmonic_interpolation(&g, &boundary, SddSolverOptions::default());
        assert!((res.values[1] - 2.0).abs() < 1e-6);
        // The {2,3,4} component has no boundary: its grounded system is a
        // pure Laplacian block with zero rhs, so it stays at 0.
        assert!(res.values[2].abs() < 1e-6);
        assert!(res.values[4].abs() < 1e-6);
    }
}
