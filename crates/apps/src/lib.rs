//! # parsdd-apps
//!
//! Applications of the parallel SDD solver, mirroring the application list
//! of the paper's introduction ("Some Applications", Section 1):
//!
//! * [`resistance`] — effective resistances via `O(log n)` solves against
//!   random projections (Spielman–Srivastava), the primitive behind
//!   spectral sparsification.
//!
//! Every module here is a many-right-hand-side workload against one
//! prebuilt chain, so the apps batch their systems through
//! [`parsdd_solver::sdd_solve::SddSolver::solve_many`] — the chain's
//! matrices stream once per block of right-hand sides — and the batched
//! answers are bitwise identical to one-solve-at-a-time loops.
//! * [`sparsifier`] — spectral/cut sparsifiers by sampling edges with
//!   probability proportional to `w_e · R_eff(e)` \[SS08\].
//! * [`electrical`] — electrical flows / potentials (one solve per flow),
//!   the inner loop of the Christiano–Kelner–Mądry–Spielman–Teng
//!   approximate max-flow algorithm [CKM+10].
//! * [`maxflow`] — approximate undirected max-flow via multiplicative
//!   weights over electrical flows, plus an exact augmenting-path max-flow
//!   used as the ground-truth comparator in tests and experiments.
//! * [`spectral`] — Fiedler vectors by inverse power iteration through the
//!   solver, and spectral bisection.
//! * [`harmonic`] — harmonic interpolation / discrete Dirichlet problems
//!   (grounded-Laplacian solves through the SDD path), the kernel of
//!   Poisson image editing and label propagation.
//! * [`poisson`] — discrete Poisson problems on grids (the vision/graphics
//!   motivation), a convenience layer used by the examples.
//! * [`mod@pagerank`] — PageRank / weighted SpMV over the frontier traversal
//!   core (the Ligra `SPMV` workload), dense-pull pinned for bitwise
//!   width-determinism; runs on [`Graph`](parsdd_graph::Graph), the lean
//!   CSR, or an mmap view.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod electrical;
pub mod harmonic;
pub mod maxflow;
pub mod pagerank;
pub mod poisson;
pub mod resistance;
pub mod sparsifier;
pub mod spectral;

pub use electrical::{electrical_flow, electrical_flows, ElectricalFlow};
pub use harmonic::{harmonic_interpolation, harmonic_interpolation_many, HarmonicResult};
pub use maxflow::{approx_max_flow, exact_max_flow, ApproxMaxFlowResult};
pub use pagerank::{pagerank, spmv, PageRankResult};
pub use resistance::{approximate_effective_resistances, exact_effective_resistances};
pub use sparsifier::{spectral_sparsify, SparsifierResult};
pub use spectral::{fiedler_vector, spectral_bisection, FiedlerResult};
