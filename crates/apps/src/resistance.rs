//! Effective resistances.
//!
//! The effective resistance of an edge (or vertex pair) is
//! `R_eff(u,v) = (χ_u − χ_v)ᵀ L⁺ (χ_u − χ_v)`. Spielman and Srivastava
//! showed that all edge resistances can be approximated simultaneously with
//! `O(log n)` Laplacian solves against random ±1 projections of the
//! weighted incidence matrix — the primitive the paper's "construction of
//! spectral sparsifiers" application relies on. The exact variant (one
//! solve per edge endpoint pair) is provided for verification.
//!
//! Both estimators are **many-right-hand-side** workloads against one
//! Laplacian, so both batch their systems through
//! [`SddSolver::solve_many`]: every chain level streams its matrices once
//! per block of projections instead of once per solve. The projection
//! signs are counter-based per-`(projection, edge)` coins (the
//! [`parsdd_solver::sparsify::counter_coin`] scheme), not a sequential RNG
//! stream — each sign is a pure function of `(seed, projection, edge)`, so
//! the batched estimator and a one-solve-at-a-time loop see identical
//! randomness, and the results agree **bitwise** at every pool width.

use rayon::prelude::*;

use parsdd_graph::Graph;
use parsdd_solver::sdd_solve::SddSolver;
use parsdd_solver::sparsify::counter_coin;

/// Exact effective resistance between two vertices (one solve).
pub fn pair_effective_resistance(g: &Graph, solver: &SddSolver, u: u32, v: u32) -> f64 {
    let mut b = vec![0.0; g.n()];
    b[u as usize] = 1.0;
    b[v as usize] = -1.0;
    let out = solver.solve(&b);
    out.x[u as usize] - out.x[v as usize]
}

/// Exact effective resistance of every edge (m solves, batched through
/// [`SddSolver::solve_many`] — only for verification on small graphs).
/// The dense `χ_u − χ_v` right-hand sides are built one solver-block at
/// a time, so peak memory stays `O(block · n)` instead of `O(m · n)`.
pub fn exact_effective_resistances(g: &Graph, solver: &SddSolver) -> Vec<f64> {
    let n = g.n();
    let mut out = Vec::with_capacity(g.m());
    for chunk in g.edges().chunks(parsdd_solver::sdd_solve::MAX_BLOCK_WIDTH) {
        let rhs: Vec<Vec<f64>> = chunk
            .iter()
            .map(|e| {
                let mut b = vec![0.0; n];
                b[e.u as usize] = 1.0;
                b[e.v as usize] = -1.0;
                b
            })
            .collect();
        let outs = solver.solve_many(&rhs);
        out.extend(
            chunk
                .iter()
                .zip(&outs)
                .map(|(e, o)| o.x[e.u as usize] - o.x[e.v as usize]),
        );
    }
    out
}

/// The ±1 sign of edge `edge` in projection `projection`: a counter-based
/// coin over `(seed ⊕ projection-tweak, edge)`, order-independent in both
/// coordinates.
fn projection_sign(seed: u64, projection: u64, edge: u64) -> f64 {
    let tweaked = seed ^ projection.wrapping_mul(0xd1b5_4a32_d192_ed03);
    if counter_coin(tweaked, edge) < 0.5 {
        1.0
    } else {
        -1.0
    }
}

/// Approximate effective resistances of every edge via the
/// Spielman–Srivastava random-projection scheme with `num_projections`
/// solves, batched through [`SddSolver::solve_many`]. With
/// `q = O(log n / ε²)` projections the estimates are within `1 ± ε` of the
/// truth with high probability.
pub fn approximate_effective_resistances(
    g: &Graph,
    solver: &SddSolver,
    num_projections: usize,
    seed: u64,
) -> Vec<f64> {
    let n = g.n();
    let m = g.m();
    // y_p = Bᵀ W^{1/2} q_p for counter-based ±1 vectors q_p over the edges;
    // R_eff(u,v) ≈ Σ_p (z_p[u] − z_p[v])² / num_projections with
    // z_p = L⁺ y_p.
    let mut signs = vec![0.0f64; m];
    let mut rhs: Vec<Vec<f64>> = Vec::with_capacity(num_projections);
    for p in 0..num_projections {
        // Order-independent coins let the sign pass run as a parallel map;
        // the buffer is exact-length, so `collect_into_vec` reuses it
        // across projections without reallocating.
        (0..m as u64)
            .into_par_iter()
            .with_min_len(2048)
            .map(|e| projection_sign(seed, p as u64, e))
            .collect_into_vec(&mut signs);
        let mut y = vec![0.0f64; n];
        for (e, &s) in g.edges().iter().zip(&signs) {
            let w = e.w.sqrt() * s;
            y[e.u as usize] += w;
            y[e.v as usize] -= w;
        }
        rhs.push(y);
    }
    let outs = solver.solve_many(&rhs);
    let mut acc = vec![0.0f64; m];
    let scale = 1.0 / num_projections as f64;
    for out in &outs {
        let z = &out.x;
        for (i, e) in g.edges().iter().enumerate() {
            let d = z[e.u as usize] - z[e.v as usize];
            acc[i] += d * d * scale;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;
    use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

    fn solver_for(g: &Graph) -> SddSolver {
        SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-10))
    }

    #[test]
    fn path_resistances_are_path_lengths() {
        let g = generators::path(6, 1.0);
        let solver = solver_for(&g);
        assert!((pair_effective_resistance(&g, &solver, 0, 5) - 5.0).abs() < 1e-6);
        assert!((pair_effective_resistance(&g, &solver, 1, 3) - 2.0).abs() < 1e-6);
        let exact = exact_effective_resistances(&g, &solver);
        for r in exact {
            assert!((r - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n with unit weights: R_eff between any pair is 2/n.
        let n = 10;
        let g = generators::complete(n, 1.0);
        let solver = solver_for(&g);
        let r = pair_effective_resistance(&g, &solver, 0, 5);
        assert!((r - 2.0 / n as f64).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn foster_theorem_on_tree_and_cycle() {
        // Foster: Σ_e w_e R_eff(e) = n − #components. For a tree every edge
        // has R_eff = 1/w_e, so the sum is n−1 trivially; check the cycle.
        let g = generators::cycle(12, 1.0);
        let solver = solver_for(&g);
        let exact = exact_effective_resistances(&g, &solver);
        let total: f64 = exact.iter().zip(g.edges()).map(|(r, e)| r * e.w).sum();
        assert!(
            (total - (g.n() as f64 - 1.0)).abs() < 1e-5,
            "Foster sum {total}"
        );
    }

    #[test]
    fn approximation_matches_exact_within_tolerance() {
        let g = generators::grid2d(8, 8, |_, _| 1.0);
        let solver = solver_for(&g);
        let exact = exact_effective_resistances(&g, &solver);
        let approx = approximate_effective_resistances(&g, &solver, 200, 7);
        // With 200 projections the relative error should be comfortably
        // below 30% for every edge (JL concentration).
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() <= 0.3 * e + 1e-6, "approx {a} vs exact {e}");
        }
    }

    #[test]
    fn batched_estimator_matches_looped_solves_bitwise() {
        // The counter-based signs are a pure function of (seed, projection,
        // edge) and the solver's batched answers are bitwise identical to
        // looped single solves, so running the estimator's projections one
        // solve at a time must reproduce the batched output exactly.
        let g = generators::grid2d(7, 7, |_, _| 1.0);
        let solver = solver_for(&g);
        let q = 8;
        let seed = 42;
        let batched = approximate_effective_resistances(&g, &solver, q, seed);
        let m = g.m();
        let n = g.n();
        let mut acc = vec![0.0f64; m];
        let scale = 1.0 / q as f64;
        for p in 0..q {
            let mut y = vec![0.0f64; n];
            let mut signs = Vec::with_capacity(m);
            for e in 0..m as u64 {
                signs.push(projection_sign(seed, p as u64, e));
            }
            for (e, &s) in g.edges().iter().zip(&signs) {
                let w = e.w.sqrt() * s;
                y[e.u as usize] += w;
                y[e.v as usize] -= w;
            }
            let z = solver.solve(&y).x;
            for (i, e) in g.edges().iter().enumerate() {
                let d = z[e.u as usize] - z[e.v as usize];
                acc[i] += d * d * scale;
            }
        }
        for (i, (a, b)) in batched.iter().zip(&acc).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "edge {i}");
        }
    }
}
