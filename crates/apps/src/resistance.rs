//! Effective resistances.
//!
//! The effective resistance of an edge (or vertex pair) is
//! `R_eff(u,v) = (χ_u − χ_v)ᵀ L⁺ (χ_u − χ_v)`. Spielman and Srivastava
//! showed that all edge resistances can be approximated simultaneously with
//! `O(log n)` Laplacian solves against random ±1 projections of the
//! weighted incidence matrix — the primitive the paper's "construction of
//! spectral sparsifiers" application relies on. The exact variant (one
//! solve per edge endpoint pair) is provided for verification.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use parsdd_graph::Graph;
use parsdd_solver::sdd_solve::SddSolver;

/// Exact effective resistance between two vertices (one solve).
pub fn pair_effective_resistance(g: &Graph, solver: &SddSolver, u: u32, v: u32) -> f64 {
    let mut b = vec![0.0; g.n()];
    b[u as usize] = 1.0;
    b[v as usize] = -1.0;
    let out = solver.solve(&b);
    out.x[u as usize] - out.x[v as usize]
}

/// Exact effective resistance of every edge (m solves — only for
/// verification on small graphs).
pub fn exact_effective_resistances(g: &Graph, solver: &SddSolver) -> Vec<f64> {
    g.edges()
        .iter()
        .map(|e| pair_effective_resistance(g, solver, e.u, e.v))
        .collect()
}

/// Approximate effective resistances of every edge via the
/// Spielman–Srivastava random-projection scheme with `num_projections`
/// solves. With `q = O(log n / ε²)` projections the estimates are within
/// `1 ± ε` of the truth with high probability.
pub fn approximate_effective_resistances(
    g: &Graph,
    solver: &SddSolver,
    num_projections: usize,
    seed: u64,
) -> Vec<f64> {
    let n = g.n();
    let m = g.m();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // z_k = L⁺ (Bᵀ W^{1/2} q_k) for random ±1 vectors q_k over the edges;
    // R_eff(u,v) ≈ Σ_k (z_k[u] − z_k[v])² / num_projections … up to the
    // 1/√q scaling folded in below.
    let mut acc = vec![0.0f64; m];
    let scale = 1.0 / num_projections as f64;
    for _ in 0..num_projections {
        // y = Bᵀ W^{1/2} q, built edge by edge.
        let mut y = vec![0.0f64; n];
        let mut signs = Vec::with_capacity(m);
        for e in g.edges() {
            let s: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            signs.push(s);
            let w = e.w.sqrt() * s;
            y[e.u as usize] += w;
            y[e.v as usize] -= w;
        }
        let out = solver.solve(&y);
        let z = out.x;
        for (i, e) in g.edges().iter().enumerate() {
            let d = z[e.u as usize] - z[e.v as usize];
            acc[i] += d * d * scale;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsdd_graph::generators;
    use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

    fn solver_for(g: &Graph) -> SddSolver {
        SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-10))
    }

    #[test]
    fn path_resistances_are_path_lengths() {
        let g = generators::path(6, 1.0);
        let solver = solver_for(&g);
        assert!((pair_effective_resistance(&g, &solver, 0, 5) - 5.0).abs() < 1e-6);
        assert!((pair_effective_resistance(&g, &solver, 1, 3) - 2.0).abs() < 1e-6);
        let exact = exact_effective_resistances(&g, &solver);
        for r in exact {
            assert!((r - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n with unit weights: R_eff between any pair is 2/n.
        let n = 10;
        let g = generators::complete(n, 1.0);
        let solver = solver_for(&g);
        let r = pair_effective_resistance(&g, &solver, 0, 5);
        assert!((r - 2.0 / n as f64).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn foster_theorem_on_tree_and_cycle() {
        // Foster: Σ_e w_e R_eff(e) = n − #components. For a tree every edge
        // has R_eff = 1/w_e, so the sum is n−1 trivially; check the cycle.
        let g = generators::cycle(12, 1.0);
        let solver = solver_for(&g);
        let exact = exact_effective_resistances(&g, &solver);
        let total: f64 = exact.iter().zip(g.edges()).map(|(r, e)| r * e.w).sum();
        assert!(
            (total - (g.n() as f64 - 1.0)).abs() < 1e-5,
            "Foster sum {total}"
        );
    }

    #[test]
    fn approximation_matches_exact_within_tolerance() {
        let g = generators::grid2d(8, 8, |_, _| 1.0);
        let solver = solver_for(&g);
        let exact = exact_effective_resistances(&g, &solver);
        let approx = approximate_effective_resistances(&g, &solver, 200, 7);
        // With 200 projections the relative error should be comfortably
        // below 30% for every edge (JL concentration).
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() <= 0.3 * e + 1e-6, "approx {a} vs exact {e}");
        }
    }
}
