//! `Partition` — Algorithm 4.2: low-diameter decomposition with multiple
//! edge classes.
//!
//! `Partition` runs `splitGraph` treating all edge classes as one, then
//! checks each class's number of crossing edges against the validation
//! threshold (Theorem 4.1(3) / Corollary 4.8) and retries with a fresh
//! seed if any class is cut too heavily. The expected number of trials is
//! at most 4.

use parsdd_graph::{EdgeId, Graph};
use rayon::prelude::*;

use crate::params::{paper_cut_threshold, CutValidation, PartitionParams};
use crate::split::{split_graph, SplitResult};

/// The outcome of `Partition`.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// The accepted decomposition.
    pub split: SplitResult,
    /// Number of edges of each class crossing between components.
    pub cut_per_class: Vec<usize>,
    /// Size of each class.
    pub class_sizes: Vec<usize>,
    /// Number of `splitGraph` attempts made (1 = accepted immediately).
    pub attempts: usize,
    /// Whether the accepted attempt satisfied the validation rule (always
    /// true unless `max_retries` was exhausted).
    pub validated: bool,
}

impl PartitionResult {
    /// Fraction of class `i` edges cut (0 for empty classes).
    pub fn cut_fraction(&self, class: usize) -> f64 {
        if self.class_sizes[class] == 0 {
            0.0
        } else {
            self.cut_per_class[class] as f64 / self.class_sizes[class] as f64
        }
    }

    /// The largest cut fraction over all non-empty classes.
    pub fn max_cut_fraction(&self) -> f64 {
        (0..self.class_sizes.len())
            .filter(|&i| self.class_sizes[i] > 0)
            .map(|i| self.cut_fraction(i))
            .fold(0.0, f64::max)
    }
}

/// Counts, for every class, how many edges cross between components of the
/// given decomposition.
fn count_cuts(
    g: &Graph,
    classes: &[u32],
    k: usize,
    split: &SplitResult,
) -> (Vec<usize>, Vec<usize>) {
    let mut class_sizes = vec![0usize; k];
    for &c in classes {
        class_sizes[c as usize] += 1;
    }
    // One parallel pass over the edge list with a per-leaf histogram of
    // `k` counters, merged pairwise — O(m + k·leaves) work instead of the
    // former one-full-scan-per-class O(k·m).
    let chunk = g.m().div_ceil(64).max(1 << 12);
    let cut_per_class = g
        .edges()
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, edges)| {
            let base = ci * chunk;
            let mut counts = vec![0usize; k];
            for (j, e) in edges.iter().enumerate() {
                if split.labels[e.u as usize] != split.labels[e.v as usize] {
                    counts[classes[base + j] as usize] += 1;
                }
            }
            counts
        })
        .reduce_with(|mut a, b| {
            for (ai, bi) in a.iter_mut().zip(&b) {
                *ai += bi;
            }
            a
        })
        .unwrap_or_else(|| vec![0usize; k]);
    (cut_per_class, class_sizes)
}

/// Runs `Partition(G, ρ)` (Algorithm 4.2) on a graph whose edges are
/// divided into `k` classes (`classes[e] < k` for every edge id `e`).
///
/// Returns the first decomposition whose per-class cut counts satisfy the
/// validation rule, or — if `max_retries` attempts all fail — the attempt
/// with the smallest maximum cut fraction (flagged `validated = false`).
pub fn partition(
    g: &Graph,
    classes: &[u32],
    k: usize,
    params: &PartitionParams,
) -> PartitionResult {
    assert_eq!(classes.len(), g.m(), "one class per edge required");
    assert!(
        classes.iter().all(|&c| (c as usize) < k),
        "class out of range"
    );
    assert!(k >= 1);

    let mut best: Option<PartitionResult> = None;
    for attempt in 0..params.max_retries.max(1) {
        let split_params = params.split.with_seed(
            params
                .split
                .seed
                .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let split = split_graph(g, &split_params);
        let (cut_per_class, class_sizes) = count_cuts(g, classes, k, &split);

        let ok = match params.validation {
            CutValidation::None => true,
            CutValidation::Fraction(f) => {
                (0..k).all(|i| cut_per_class[i] as f64 <= f * class_sizes[i] as f64 + 1e-12)
            }
            CutValidation::Paper => (0..k).all(|i| {
                cut_per_class[i] as f64
                    <= paper_cut_threshold(class_sizes[i], k, g.n(), params.split.rho)
            }),
        };

        let result = PartitionResult {
            split,
            cut_per_class,
            class_sizes,
            attempts: attempt + 1,
            validated: ok,
        };
        if ok {
            return result;
        }
        let better = match &best {
            None => true,
            Some(b) => result.max_cut_fraction() < b.max_cut_fraction(),
        };
        if better {
            best = Some(result);
        }
    }
    best.expect("at least one attempt was made")
}

/// Convenience wrapper for the single-class case (plain low-diameter
/// decomposition of a graph): classes are all zero.
pub fn partition_single_class(g: &Graph, params: &PartitionParams) -> PartitionResult {
    let classes = vec![0u32; g.m()];
    partition(g, &classes, 1, params)
}

/// Lists the edge ids cut by the accepted decomposition.
pub fn cut_edge_ids(g: &Graph, result: &PartitionResult) -> Vec<EdgeId> {
    g.edges()
        .par_iter()
        .enumerate()
        .filter(|(_, e)| result.split.labels[e.u as usize] != result.split.labels[e.v as usize])
        .map(|(i, _)| i as EdgeId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CutValidation, PartitionParams};
    use parsdd_graph::generators;

    #[test]
    fn single_class_grid() {
        let g = generators::grid2d(32, 32, |_, _| 1.0);
        let r = partition_single_class(&g, &PartitionParams::new(16).with_seed(2));
        assert!(r.validated);
        assert_eq!(r.class_sizes[0], g.m());
        assert_eq!(r.cut_per_class.len(), 1);
        assert!(r.cut_per_class[0] < g.m());
        let cut = cut_edge_ids(&g, &r);
        assert_eq!(cut.len(), r.cut_per_class[0]);
    }

    #[test]
    fn multi_class_cut_counting() {
        let g = generators::grid2d(20, 20, |_, _| 1.0);
        // Two classes: horizontal edges (class 0) and vertical (class 1),
        // detected by comparing endpoint rows.
        let classes: Vec<u32> = g
            .edges()
            .iter()
            .map(|e| if e.u / 20 == e.v / 20 { 0 } else { 1 })
            .collect();
        let r = partition(&g, &classes, 2, &PartitionParams::new(12).with_seed(3));
        assert_eq!(r.class_sizes[0] + r.class_sizes[1], g.m());
        assert!(r.cut_per_class[0] <= r.class_sizes[0]);
        assert!(r.cut_per_class[1] <= r.class_sizes[1]);
        // Paper validation always passes at this scale.
        assert!(r.validated);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn cut_fraction_decreases_with_rho() {
        let g = generators::grid2d(40, 40, |_, _| 1.0);
        let small = partition_single_class(&g, &PartitionParams::new(6).with_seed(5));
        let large = partition_single_class(&g, &PartitionParams::new(48).with_seed(5));
        assert!(
            large.cut_fraction(0) < small.cut_fraction(0),
            "rho=48 fraction {} should beat rho=6 fraction {}",
            large.cut_fraction(0),
            small.cut_fraction(0)
        );
    }

    #[test]
    fn impossible_fraction_exhausts_retries() {
        let g = generators::grid2d(12, 12, |_, _| 1.0);
        let params = PartitionParams::new(2)
            .with_seed(7)
            .with_validation(CutValidation::Fraction(0.0));
        let mut p = params;
        p.max_retries = 3;
        let r = partition_single_class(&g, &p);
        assert!(!r.validated);
        // The returned result is the best of the 3 attempts; its attempt
        // index is within the retry budget.
        assert!(r.attempts >= 1 && r.attempts <= 3);
        assert!(r.max_cut_fraction() > 0.0);
    }

    #[test]
    fn achievable_fraction_validates() {
        let g = generators::grid2d(30, 30, |_, _| 1.0);
        let params = PartitionParams::new(30)
            .with_seed(11)
            .with_validation(CutValidation::Fraction(0.9));
        let r = partition_single_class(&g, &params);
        assert!(r.validated);
        assert!(r.cut_fraction(0) <= 0.9);
    }

    #[test]
    #[should_panic]
    fn class_length_mismatch_panics() {
        let g = generators::path(5, 1.0);
        let _ = partition(&g, &[0, 0], 1, &PartitionParams::new(4));
    }
}
