//! # parsdd-decomp
//!
//! Parallel low-diameter graph decomposition — Section 4 of *Near
//! Linear-Work Parallel SDD Solvers, Low-Diameter Decomposition, and
//! Low-Stretch Subgraphs* (SPAA 2011).
//!
//! The crate implements the two algorithms of that section:
//!
//! * [`split::split_graph`] — Algorithm 4.1 (`splitGraph`): decomposes an
//!   unweighted graph into components of strong (hop) radius at most `ρ`
//!   by growing balls from progressively larger random samples of centers,
//!   each delayed by a random "jitter", and assigning every vertex to the
//!   first ball that reaches it.
//! * [`partition::partition`] — Algorithm 4.2 (`Partition`): wraps
//!   `splitGraph` for inputs whose edge set is divided into `k` classes,
//!   re-running the decomposition until every class has few crossing edges
//!   (Corollary 4.8 / Theorem 4.1(3)).
//!
//! [`stats`] computes the quantities Theorem 4.1 bounds (component radius,
//! per-class cut fractions, work/depth proxies); the experiment benches E1,
//! E2 and E3 are built on it.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod params;
pub mod partition;
pub mod split;
pub mod stats;

pub use params::{CutValidation, PartitionParams, SplitParams};
pub use partition::{partition, PartitionResult};
pub use split::{split_graph, SplitResult};
pub use stats::DecompositionStats;
