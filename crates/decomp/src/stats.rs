//! Measured decomposition statistics — the empirical counterparts of the
//! quantities Theorem 4.1 bounds. Used by tests and by the E1/E2/E3
//! experiment benches.

use parsdd_graph::bfs::bfs;
use parsdd_graph::Graph;

use crate::split::SplitResult;

/// Summary statistics of a decomposition of `g`.
#[derive(Debug, Clone)]
pub struct DecompositionStats {
    /// Number of components.
    pub components: usize,
    /// Maximum hop radius (distance to center measured inside the
    /// component) — Theorem 4.1(2) bounds this by ρ.
    pub max_radius: u32,
    /// Maximum *strong diameter* measured by an exact BFS inside each
    /// component (at most `2 × max_radius`).
    pub max_strong_diameter: u32,
    /// Number of edges crossing between components.
    pub cut_edges: usize,
    /// Fraction of edges crossing between components — Theorem 4.1(3)
    /// bounds this by `c₁·k·log³n/ρ` per class.
    pub cut_fraction: f64,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Mean component size.
    pub mean_component_size: f64,
}

/// Computes decomposition statistics. `exact_diameter` additionally runs a
/// BFS per component (from the component's center) to measure the strong
/// diameter exactly; for large graphs pass `false` to skip it.
pub fn decomposition_stats(
    g: &Graph,
    split: &SplitResult,
    exact_diameter: bool,
) -> DecompositionStats {
    let n = g.n();
    let cut_edges = g
        .edges()
        .iter()
        .filter(|e| split.labels[e.u as usize] != split.labels[e.v as usize])
        .count();
    let cut_fraction = if g.m() == 0 {
        0.0
    } else {
        cut_edges as f64 / g.m() as f64
    };
    let mut sizes = vec![0usize; split.component_count];
    for &l in &split.labels {
        sizes[l as usize] += 1;
    }
    let largest_component = sizes.iter().copied().max().unwrap_or(0);
    let mean_component_size = if split.component_count == 0 {
        0.0
    } else {
        n as f64 / split.component_count as f64
    };

    let max_strong_diameter = if exact_diameter && split.component_count > 0 {
        // Strong diameter of component C measured in G[C]: run a BFS from
        // the center inside the induced subgraph and take twice the
        // eccentricity as an upper bound witness; the radius itself is the
        // maximum distance found (this is the measurement used in the E1
        // experiment).
        let members = split.members();
        let mut max_diam = 0u32;
        for (c, verts) in members.iter().enumerate() {
            if verts.len() <= 1 {
                continue;
            }
            // Build the induced subgraph on this component.
            let mut remap = std::collections::HashMap::with_capacity(verts.len());
            for (i, &v) in verts.iter().enumerate() {
                remap.insert(v, i as u32);
            }
            let mut edges = Vec::new();
            for &v in verts {
                for (u, w, _e) in g.arcs(v) {
                    if v < u {
                        if let (Some(&a), Some(&b)) = (remap.get(&v), remap.get(&u)) {
                            if split.labels[u as usize] == c as u32 {
                                edges.push(parsdd_graph::Edge::new(a, b, w));
                            }
                        }
                    }
                }
            }
            let sub = Graph::from_edges_unchecked(verts.len(), edges);
            let center_local = remap[&split.centers[c]];
            let ecc = bfs(&sub, center_local).eccentricity();
            max_diam = max_diam.max(2 * ecc);
        }
        max_diam
    } else {
        2 * split.max_radius()
    };

    DecompositionStats {
        components: split.component_count,
        max_radius: split.max_radius(),
        max_strong_diameter,
        cut_edges,
        cut_fraction,
        largest_component,
        mean_component_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SplitParams;
    use crate::split::split_graph;
    use parsdd_graph::generators;

    #[test]
    fn stats_consistency_on_grid() {
        let g = generators::grid2d(25, 25, |_, _| 1.0);
        let split = split_graph(&g, &SplitParams::new(20).with_seed(4));
        let stats = decomposition_stats(&g, &split, true);
        assert_eq!(stats.components, split.component_count);
        assert!(stats.max_radius <= 40);
        assert!(stats.max_strong_diameter <= 2 * stats.max_radius);
        assert!(stats.cut_fraction >= 0.0 && stats.cut_fraction <= 1.0);
        assert!(stats.largest_component <= g.n());
        assert!((stats.mean_component_size * stats.components as f64 - g.n() as f64).abs() < 1e-9);
    }

    #[test]
    fn exact_vs_approximate_diameter() {
        let g = generators::erdos_renyi_gnm(300, 900, 12);
        let split = split_graph(&g, &SplitParams::new(30).with_seed(8));
        let exact = decomposition_stats(&g, &split, true);
        let approx = decomposition_stats(&g, &split, false);
        assert!(exact.max_strong_diameter <= approx.max_strong_diameter);
        assert_eq!(exact.cut_edges, approx.cut_edges);
    }

    #[test]
    fn single_component_decomposition_cuts_nothing() {
        let g = generators::path(32, 1.0);
        // Huge radius -> single component (whole path claimed by one center
        // in some round).
        let split = split_graph(&g, &SplitParams::new(1000).with_seed(1));
        let stats = decomposition_stats(&g, &split, true);
        if stats.components == 1 {
            assert_eq!(stats.cut_edges, 0);
        } else {
            assert!(stats.cut_edges > 0);
        }
        assert!(stats.cut_edges <= g.m());
    }
}
