//! Parameters for the decomposition algorithms.
//!
//! The paper's constants (`T = 2 log₂ n` rounds, jitter range
//! `R = ρ / (2 log n)`, sample sizes `σ_t = 12 n^{t/T−1} |V^{(t)}| log n`,
//! cut-validation constant `c₁ = 272`) are kept as defaults. They are
//! asymptotic: the validation threshold `c₁ · k · log³n / ρ` exceeds 1 for
//! every graph a laptop can hold, so the retry loop never triggers with
//! paper constants. [`CutValidation`] therefore also offers a practical
//! mode that validates against an explicit target fraction, exercising the
//! retry logic at reachable sizes (used by the E2 experiment and tests).

/// The cut-validation rule used by `Partition` (Algorithm 4.2, step 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CutValidation {
    /// The paper's rule: class `i` may have at most
    /// `|E_i| · c₁ · k · log³ n / ρ` crossing edges with `c₁ = 272`.
    Paper,
    /// Validate against an explicit per-class cut fraction: class `i` may
    /// have at most `fraction · |E_i|` crossing edges.
    Fraction(f64),
    /// Accept any outcome (no retry).
    None,
}

/// Parameters of `splitGraph` (Algorithm 4.1).
#[derive(Debug, Clone, Copy)]
pub struct SplitParams {
    /// Radius bound `ρ`: every output component has hop radius at most
    /// `max(ρ, 2·log₂ n)` around its center (exactly `ρ` in the paper's
    /// regime `ρ ≥ 2·log₂ n`).
    pub rho: u32,
    /// RNG seed; every run with the same seed and input is identical.
    pub seed: u64,
    /// Multiplier on the paper's sample-size schedule
    /// `σ_t = 12·n^{t/T−1}·|V^{(t)}|·log n`. `1.0` reproduces the paper;
    /// smaller values grow fewer balls per round (more rounds, larger
    /// components), larger values the reverse.
    pub sample_multiplier: f64,
}

impl SplitParams {
    /// Paper-faithful parameters for radius `ρ`.
    pub fn new(rho: u32) -> Self {
        SplitParams {
            rho,
            seed: 0x5eed_0001,
            sample_multiplier: 1.0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sample-size multiplier.
    pub fn with_sample_multiplier(mut self, m: f64) -> Self {
        assert!(m > 0.0);
        self.sample_multiplier = m;
        self
    }
}

/// Parameters of `Partition` (Algorithm 4.2).
#[derive(Debug, Clone, Copy)]
pub struct PartitionParams {
    /// The inner `splitGraph` parameters.
    pub split: SplitParams,
    /// Cut-validation rule.
    pub validation: CutValidation,
    /// Maximum number of retries before accepting the best attempt seen
    /// (the paper's process is a geometric random variable with success
    /// probability ≥ 1/4; 32 retries bounds the failure probability below
    /// 1e-4 even in the worst case).
    pub max_retries: usize,
}

impl PartitionParams {
    /// Paper-faithful parameters for radius `ρ`.
    pub fn new(rho: u32) -> Self {
        PartitionParams {
            split: SplitParams::new(rho),
            validation: CutValidation::Paper,
            max_retries: 32,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.split.seed = seed;
        self
    }

    /// Sets the validation rule.
    pub fn with_validation(mut self, v: CutValidation) -> Self {
        self.validation = v;
        self
    }
}

/// Number of rounds `T = 2·log₂ n` (at least 1).
pub fn num_rounds(n: usize) -> u32 {
    let log = (n.max(2) as f64).log2();
    (2.0 * log).ceil().max(1.0) as u32
}

/// Jitter range `R = ρ / (2·log₂ n)`, clamped to at least 1 so that the
/// jitter is always meaningful.
pub fn jitter_range(rho: u32, n: usize) -> u32 {
    let log = (n.max(2) as f64).log2();
    ((rho as f64 / (2.0 * log)).floor() as u32).max(1)
}

/// The paper's sample size `σ_t = 12·n^{t/T−1}·|V^{(t)}|·log n`, scaled by
/// `multiplier`.
pub fn sample_size(n: usize, alive: usize, t: u32, rounds: u32, multiplier: f64) -> usize {
    let n_f = n.max(2) as f64;
    let exponent = t as f64 / rounds as f64 - 1.0;
    let sigma = 12.0 * n_f.powf(exponent) * alive as f64 * n_f.log2() * multiplier;
    (sigma.ceil() as usize).max(1)
}

/// The paper's cut-validation threshold for class sizes
/// (Theorem 4.1(3) with `c₁ = 272`): at most
/// `|E_i| · 272 · k · log³n / ρ` crossing edges.
pub fn paper_cut_threshold(class_size: usize, k: usize, n: usize, rho: u32) -> f64 {
    let log = (n.max(2) as f64).log2();
    class_size as f64 * 272.0 * k as f64 * log.powi(3) / rho as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_and_jitter() {
        assert_eq!(num_rounds(1024), 20);
        assert!(num_rounds(2) >= 1);
        assert_eq!(jitter_range(40, 1024), 2);
        assert_eq!(jitter_range(1, 1024), 1); // clamped
    }

    #[test]
    fn sample_sizes_grow_with_round() {
        let n = 4096;
        let rounds = num_rounds(n);
        let early = sample_size(n, n, 1, rounds, 1.0);
        let late = sample_size(n, n, rounds, rounds, 1.0);
        assert!(early < late);
        // Final round samples more than the population (so everything is
        // covered).
        assert!(late >= n);
    }

    #[test]
    fn paper_threshold_is_generous() {
        // For laptop-scale graphs the paper threshold exceeds the class
        // size (the retry loop never triggers) — this is exactly why the
        // experiments also report measured fractions.
        let t = paper_cut_threshold(1000, 1, 10_000, 32);
        assert!(t > 1000.0);
    }

    #[test]
    fn builders() {
        let p = PartitionParams::new(16)
            .with_seed(7)
            .with_validation(CutValidation::Fraction(0.5));
        assert_eq!(p.split.rho, 16);
        assert_eq!(p.split.seed, 7);
        assert_eq!(p.validation, CutValidation::Fraction(0.5));
        let s = SplitParams::new(8).with_sample_multiplier(2.0);
        assert_eq!(s.sample_multiplier, 2.0);
    }
}
