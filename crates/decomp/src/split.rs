//! `splitGraph` — Algorithm 4.1.
//!
//! The algorithm runs `T = 2·log₂ n` rounds. In round `t` it samples a set
//! `S^{(t)}` of centers from the still-unassigned ("alive") vertices — the
//! sample grows geometrically with `t`, following Cohen's (β,W)-cover
//! construction — draws a random jitter `δ_s ∈ {0, …, R}` for each center,
//! and grows a ball of radius `r^{(t)} − δ_s` from each. Every vertex
//! reached by at least one ball is assigned to the center minimising
//! `dist(u, s) + δ_s` (ties broken lexicographically), which is realised
//! here by a single *shifted multi-source BFS* in which center `s` starts
//! at round `δ_s`. Assigned vertices are removed and the next round runs
//! on the remainder.
//!
//! Properties established by the paper and checked by the tests/benches:
//! (P1) every non-empty component contains its center; (P2) components
//! have strong radius ≤ ρ (for ρ ≥ 2 log₂ n); (P3) every edge is cut with
//! probability O(log²n / R).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use parsdd_graph::bfs::{shifted_multi_source_bfs, ShiftedSource, NO_OWNER};
use parsdd_graph::{EdgeId, Graph, VertexId, INVALID_VERTEX};

use crate::params::{jitter_range, num_rounds, sample_size, SplitParams};

/// The outcome of `splitGraph`: a partition of the vertices into
/// low-radius components, each with a designated center and an explicit
/// BFS tree.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// Component label of every vertex (`0..component_count`).
    pub labels: Vec<u32>,
    /// Number of components.
    pub component_count: usize,
    /// Center vertex of each component (the component's BFS root).
    pub centers: Vec<VertexId>,
    /// Hop distance from each vertex to its component's center, measured
    /// inside the component (strong radius witness).
    pub dist_to_center: Vec<u32>,
    /// For every non-center vertex, the edge to its parent in the
    /// component's BFS tree (`EdgeId::MAX` for centers).
    pub parent_edge: Vec<EdgeId>,
    /// Parent vertex in the component BFS tree (`INVALID_VERTEX` for centers).
    pub parent: Vec<VertexId>,
    /// Number of `splitGraph` rounds that did any work (≤ `2·log₂ n`).
    pub rounds_used: u32,
    /// Total BFS rounds summed over all iterations — the algorithm's
    /// machine-independent depth proxy (Theorem 4.1: `O(ρ log² n)`).
    pub bfs_rounds_total: u64,
    /// Total arcs traversed — the work proxy (Theorem 4.1: `O(m log² n)`).
    pub arcs_traversed: u64,
}

impl SplitResult {
    /// The members of each component.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.component_count];
        for (v, &l) in self.labels.iter().enumerate() {
            groups[l as usize].push(v as VertexId);
        }
        groups
    }

    /// The BFS-tree edges of all components (a spanning forest of the
    /// decomposition: exactly `n − component_count` edges). Ordered
    /// parallel compaction — identical output at every pool width.
    pub fn tree_edges(&self) -> Vec<EdgeId> {
        self.parent_edge
            .par_iter()
            .with_min_len(4096)
            .copied()
            .filter(|&e| e != EdgeId::MAX)
            .collect()
    }

    /// Maximum hop radius over all components (the quantity bounded by
    /// Theorem 4.1(2)).
    pub fn max_radius(&self) -> u32 {
        self.dist_to_center.iter().copied().max().unwrap_or(0)
    }
}

/// Runs `splitGraph` (Algorithm 4.1) on `g` with radius parameter
/// `params.rho`.
///
/// The graph is treated as unweighted (hop distance); weights are ignored.
/// Works for disconnected graphs: each connected component is partitioned
/// independently (a component smaller than the radius bound typically
/// becomes a single output component).
pub fn split_graph(g: &Graph, params: &SplitParams) -> SplitResult {
    let n = g.n();
    let mut labels = vec![u32::MAX; n];
    let mut centers: Vec<VertexId> = Vec::new();
    let mut dist_to_center = vec![0u32; n];
    let mut parent_edge = vec![EdgeId::MAX; n];
    let mut parent = vec![INVALID_VERTEX; n];
    let mut alive = vec![true; n];
    let mut alive_count = n;

    if n == 0 {
        return SplitResult {
            labels,
            component_count: 0,
            centers,
            dist_to_center,
            parent_edge,
            parent,
            rounds_used: 0,
            bfs_rounds_total: 0,
            arcs_traversed: 0,
        };
    }

    let rounds = num_rounds(n);
    let r_jitter = jitter_range(params.rho, n);
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let mut rounds_used = 0u32;
    let mut bfs_rounds_total = 0u64;
    let mut arcs_traversed = 0u64;

    for t in 1..=rounds {
        if alive_count == 0 {
            break;
        }
        rounds_used = t;
        // Ball radius for this round: r^{(t)} = (T − t + 1)·R.
        let radius = (rounds - t + 1) * r_jitter;

        // Sample σ_t centers uniformly from the alive vertices (or take
        // all of them when the sample exceeds the population).
        let sigma = sample_size(n, alive_count, t, rounds, params.sample_multiplier);
        let alive_vertices: Vec<VertexId> =
            (0..n as VertexId).filter(|&v| alive[v as usize]).collect();
        let mut sampled: Vec<VertexId> = if sigma >= alive_vertices.len() {
            alive_vertices
        } else {
            alive_vertices
                .choose_multiple(&mut rng, sigma)
                .copied()
                .collect()
        };
        // Sort by vertex id so that "smaller source index" ties equal
        // "smaller vertex id" — the consistent lexicographic tie break the
        // paper requires.
        sampled.sort_unstable();

        // Random jitters δ_s ∈ {0, …, R}.
        let sources: Vec<ShiftedSource> = sampled
            .iter()
            .map(|&v| ShiftedSource {
                vertex: v,
                delay: rng.gen_range(0..=r_jitter),
            })
            .collect();

        let bfs = shifted_multi_source_bfs(g, &sources, radius, Some(&alive));
        bfs_rounds_total += bfs.rounds as u64;
        arcs_traversed += bfs.arcs_traversed;

        // Materialise components: a center that claimed at least one
        // vertex becomes a component (P1 guarantees it claimed itself).
        let mut component_of_source: Vec<u32> = vec![u32::MAX; sources.len()];
        for v in 0..n {
            let o = bfs.owner[v];
            if o == NO_OWNER {
                continue;
            }
            debug_assert!(alive[v]);
            if component_of_source[o as usize] == u32::MAX {
                component_of_source[o as usize] = centers.len() as u32;
                centers.push(sources[o as usize].vertex);
            }
            let comp = component_of_source[o as usize];
            labels[v] = comp;
            dist_to_center[v] = bfs.dist[v];
            parent_edge[v] = bfs.parent_edge[v];
            parent[v] = bfs.parent[v];
            alive[v] = false;
            alive_count -= 1;
        }
    }

    debug_assert_eq!(alive_count, 0, "final round samples every alive vertex");
    SplitResult {
        component_count: centers.len(),
        labels,
        centers,
        dist_to_center,
        parent_edge,
        parent,
        rounds_used,
        bfs_rounds_total,
        arcs_traversed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SplitParams;
    use parsdd_graph::components::parallel_connected_components;
    use parsdd_graph::generators;
    use parsdd_graph::unionfind::UnionFind;

    fn check_invariants(g: &Graph, r: &SplitResult) {
        let n = g.n();
        // Every vertex is assigned.
        assert!(r.labels.iter().all(|&l| (l as usize) < r.component_count));
        assert_eq!(r.centers.len(), r.component_count);
        // (P1) the center belongs to its own component at distance 0.
        for (c, &center) in r.centers.iter().enumerate() {
            assert_eq!(r.labels[center as usize] as usize, c);
            assert_eq!(r.dist_to_center[center as usize], 0);
            assert_eq!(r.parent_edge[center as usize], EdgeId::MAX);
        }
        // Parent edges stay within the component and decrease distance —
        // this is the strong-radius witness (Lemma 4.3 / Fact 4.2).
        for v in 0..n {
            if r.parent_edge[v] != EdgeId::MAX {
                let e = g.edge(r.parent_edge[v]);
                let p = e.other(v as u32);
                assert_eq!(r.labels[p as usize], r.labels[v]);
                assert_eq!(r.dist_to_center[p as usize] + 1, r.dist_to_center[v]);
            }
        }
        // Tree edges form a spanning forest of the partition.
        let tree = r.tree_edges();
        assert_eq!(tree.len(), n - r.component_count);
        let mut uf = UnionFind::new(n);
        for &e in &tree {
            let edge = g.edge(e);
            assert!(uf.unite(edge.u, edge.v), "cycle in component BFS trees");
        }
    }

    #[test]
    fn grid_decomposition_invariants() {
        let g = generators::grid2d(30, 30, |_, _| 1.0);
        let r = split_graph(&g, &SplitParams::new(12).with_seed(1));
        check_invariants(&g, &r);
        assert!(r.component_count >= 1);
    }

    #[test]
    fn radius_respects_bound_in_paper_regime() {
        // n = 900 → 2·log₂ n ≈ 19.6; use ρ = 40 ≥ that so the strict bound
        // of Theorem 4.1(2) applies.
        let g = generators::grid2d(30, 30, |_, _| 1.0);
        let rho = 40;
        let r = split_graph(&g, &SplitParams::new(rho).with_seed(3));
        check_invariants(&g, &r);
        assert!(
            r.max_radius() <= rho,
            "radius {} exceeds rho {}",
            r.max_radius(),
            rho
        );
    }

    #[test]
    fn smaller_rho_gives_more_components() {
        let g = generators::grid2d(40, 40, |_, _| 1.0);
        let small = split_graph(&g, &SplitParams::new(8).with_seed(5));
        let large = split_graph(&g, &SplitParams::new(64).with_seed(5));
        check_invariants(&g, &small);
        check_invariants(&g, &large);
        assert!(
            small.component_count > large.component_count,
            "small rho {} comps vs large rho {} comps",
            small.component_count,
            large.component_count
        );
    }

    #[test]
    fn disconnected_graph_components_respected() {
        use parsdd_graph::{Edge, Graph};
        // Two separate paths.
        let mut edges = Vec::new();
        for i in 0..9u32 {
            edges.push(Edge::new(i, i + 1, 1.0));
        }
        for i in 10..19u32 {
            edges.push(Edge::new(i, i + 1, 1.0));
        }
        let g = Graph::from_edges(20, edges);
        let r = split_graph(&g, &SplitParams::new(50).with_seed(2));
        check_invariants(&g, &r);
        // No output component can span the two input components.
        let comps = parallel_connected_components(&g);
        for v in 0..20usize {
            for u in 0..20usize {
                if r.labels[v] == r.labels[u] {
                    assert!(comps.same(v as u32, u as u32));
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::erdos_renyi_gnm(400, 1200, 9);
        let a = split_graph(&g, &SplitParams::new(10).with_seed(77));
        let b = split_graph(&g, &SplitParams::new(10).with_seed(77));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centers, b.centers);
        let c = split_graph(&g, &SplitParams::new(10).with_seed(78));
        // Different seed: almost surely a different partition.
        assert!(a.labels != c.labels || a.centers != c.centers);
    }

    #[test]
    fn random_regular_graph_invariants() {
        let g = generators::random_regular(600, 4, 11);
        let r = split_graph(&g, &SplitParams::new(24).with_seed(4));
        check_invariants(&g, &r);
    }

    #[test]
    fn single_vertex_and_empty_graphs() {
        use parsdd_graph::Graph;
        let empty = Graph::from_edges(0, vec![]);
        let r = split_graph(&empty, &SplitParams::new(4));
        assert_eq!(r.component_count, 0);
        let single = Graph::from_edges(1, vec![]);
        let r = split_graph(&single, &SplitParams::new(4));
        assert_eq!(r.component_count, 1);
        assert_eq!(r.labels, vec![0]);
    }

    #[test]
    fn work_and_depth_counters_populated() {
        let g = generators::grid2d(25, 25, |_, _| 1.0);
        let r = split_graph(&g, &SplitParams::new(16).with_seed(6));
        assert!(r.bfs_rounds_total > 0);
        assert!(r.arcs_traversed > 0);
        assert!(r.rounds_used >= 1);
    }
}
