//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`] (and a [`ChaCha20Rng`] alias constructor) as a
//! genuine ChaCha keystream generator — the IETF variant with a 64-bit
//! block counter — over the shim `rand` traits. Output is deterministic per
//! seed; it is a faithful ChaCha keystream, though word-level framing is
//! not guaranteed bit-identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream RNG with a configurable round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key words (8) from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill".
    word_pos: usize,
}

/// ChaCha with 8 rounds (the paper-repro default: fast, high quality).
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the original cipher strength).
pub type ChaCha20Rng = ChaChaRng<20>;

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let word = self.block[self.word_pos];
        self.word_pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn chacha20_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector (key 00..1f, counter 1, zero nonce is
        // not representable here — instead sanity-check statistical shape).
        let mut rng = ChaCha20Rng::from_seed([0x0fu8; 32]);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_compiles_through_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let v: u32 = rng.gen_range(0..100);
        assert!(v < 100);
        let mut xs = [1, 2, 3, 4, 5];
        xs.shuffle(&mut rng);
        assert_eq!(xs.iter().sum::<i32>(), 15);
    }
}
