//! Parallel merge sort backing the `par_sort*` family.
//!
//! Shape: split the slice at midpoints down to [`SORT_LEAF`]-sized leaves,
//! sort leaves with the std sorts (pattern-defeating quicksort / timsort),
//! and merge sibling runs bottom-up. Merging is done **in place** with the
//! SymMerge algorithm (Kim & Kutzner 2004, the same scheme Go's
//! `sort.Stable` uses): O(log n) recursion with block rotations, no scratch
//! buffer and no `unsafe`. The two sub-merges SymMerge produces operate on
//! disjoint subslices, so they also run under `join`.
//!
//! Determinism: the recursion tree depends only on the slice length, and
//! every constituent (std sorts, SymMerge) is deterministic, so the result
//! — including the relative order of equal elements under the "unstable"
//! entry points — is identical at every pool width. Leaves are sorted
//! stably (`sort_by`) or unstably (`sort_unstable_by`) to match the entry
//! point; SymMerge itself is stable, so `par_sort*` is a true stable sort.

use std::cmp::Ordering;

use crate::registry;

/// Below this length a slice is sorted directly with the std sorts; above
/// it, halves are sorted under `join` and merged in place.
const SORT_LEAF: usize = 1 << 13;

/// Sorts `v` with the comparator, in parallel above [`SORT_LEAF`].
pub(crate) fn par_sort_by<T, F>(v: &mut [T], stable: bool, cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if v.len() <= SORT_LEAF {
        leaf_sort(v, stable, cmp);
        return;
    }
    registry::in_parallel_context(|| sort_rec(v, stable, cmp));
}

fn leaf_sort<T, F>(v: &mut [T], stable: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if stable {
        v.sort_by(cmp);
    } else {
        v.sort_unstable_by(cmp);
    }
}

fn sort_rec<T, F>(v: &mut [T], stable: bool, cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let len = v.len();
    if len <= SORT_LEAF {
        leaf_sort(v, stable, cmp);
        return;
    }
    let mid = len / 2;
    {
        let (a, b) = v.split_at_mut(mid);
        crate::join(|| sort_rec(a, stable, cmp), || sort_rec(b, stable, cmp));
    }
    sym_merge(v, mid, cmp);
}

/// Merges the sorted runs `v[..m]` and `v[m..]` in place (SymMerge).
/// Stable: on ties, elements of the left run precede elements of the right.
fn sym_merge<T, F>(v: &mut [T], m: usize, cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let len = v.len();
    if m == 0 || m == len {
        return;
    }
    if m == 1 {
        // Binary-insert v[0] into the sorted v[1..].
        let mut lo = 1;
        let mut hi = len;
        while lo < hi {
            let h = (lo + hi) / 2;
            if cmp(&v[h], &v[0]) == Ordering::Less {
                lo = h + 1;
            } else {
                hi = h;
            }
        }
        v[..lo].rotate_left(1);
        return;
    }
    if m == len - 1 {
        // Binary-insert v[m] into the sorted v[..m].
        let mut lo = 0;
        let mut hi = m;
        while lo < hi {
            let h = (lo + hi) / 2;
            if cmp(&v[m], &v[h]) == Ordering::Less {
                hi = h;
            } else {
                lo = h + 1;
            }
        }
        v[lo..].rotate_right(1);
        return;
    }

    // Symmetric decomposition: find the longest suffix of the left run and
    // prefix of the right run that can be exchanged by one rotation so that
    // both halves of the slice become independent merge problems.
    let mid = len / 2;
    let n = mid + m;
    let (mut lo, mut hi) = if m > mid { (n - len, mid) } else { (0, m) };
    let p = n - 1;
    while lo < hi {
        let c = (lo + hi) / 2;
        if cmp(&v[p - c], &v[c]) != Ordering::Less {
            lo = c + 1;
        } else {
            hi = c;
        }
    }
    let start = lo;
    let end = n - start;
    if start < m && m < end {
        v[start..end].rotate_left(m - start);
    }

    let (left, right) = v.split_at_mut(mid);
    let go_left = start > 0 && start < mid;
    let go_right = end > mid && end < len;
    let local_end = end - mid;
    if len > SORT_LEAF {
        crate::join(
            || {
                if go_left {
                    sym_merge(left, start, cmp);
                }
            },
            || {
                if go_right {
                    sym_merge(right, local_end, cmp);
                }
            },
        );
    } else {
        if go_left {
            sym_merge(left, start, cmp);
        }
        if go_right {
            sym_merge(right, local_end, cmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorted(mut v: Vec<i64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sort_by(&mut v, false, &i64::cmp);
        assert_eq!(v, expect);
    }

    #[test]
    fn small_and_edge_cases() {
        check_sorted(vec![]);
        check_sorted(vec![1]);
        check_sorted(vec![2, 1]);
        check_sorted(vec![3, 1, 2, 1, 3, 0]);
    }

    #[test]
    fn large_pseudorandom() {
        // Deterministic LCG, length above SORT_LEAF to exercise merging.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let v: Vec<i64> = (0..100_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as i64 % 1000
            })
            .collect();
        check_sorted(v);
    }

    #[test]
    fn stability_preserved() {
        // Pairs sorted by key only; payload order among equal keys must be
        // the input order.
        let mut v: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i % 7, i)).collect();
        par_sort_by(&mut v, true, &|a: &(u32, u32), b: &(u32, u32)| {
            a.0.cmp(&b.0)
        });
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
