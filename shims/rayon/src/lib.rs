//! Offline stand-in for the `rayon` crate — with a real multi-threaded
//! runtime.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of rayon's API that the `parsdd` crates use. Unlike the
//! original types-only shim, execution is now genuinely parallel: a global
//! lazily initialized worker pool with per-worker deques and work stealing
//! runs every `par_*` entry point, `join(a, b)` really executes its two
//! closures on different workers when a thief is available, and
//! `ThreadPool::install` scopes parallel dispatch to a pool of the
//! configured width. Swapping in the real crate remains a one-line
//! Cargo.toml change.
//!
//! Layout:
//! - `registry` — the runtime: worker threads, lock-free Chase-Lev deques,
//!   stealing, latches, the blocking [`join`], and [`scope`]/[`Scope`].
//!   All of the shim's `unsafe` lives there (the classic stack-job pattern
//!   plus the deque's atomic protocol).
//! - `iter` — splittable producers and the [`ParIter`] combinator surface
//!   (`par_iter`, `par_iter_mut`, `par_chunks`, `into_par_iter`, zips,
//!   maps, reductions, collects).
//! - `sort` — parallel merge sort (std sorts at the leaves, in-place
//!   SymMerge above them) behind `par_sort_unstable*` / `par_sort*`.
//!
//! Guarantees the algorithm crates rely on:
//! - **Ordering:** the ordered combinators (`map`/`filter` + `collect`,
//!   `enumerate`, sorts) produce exactly the sequential result, like real
//!   rayon.
//! - **Determinism:** split trees depend only on input length (never on
//!   pool width or stealing), so even non-associative `f64` reductions are
//!   bitwise reproducible run-to-run *and* across thread counts — stronger
//!   than real rayon; see `iter` module docs.
//! - **Thread counts:** the global pool width comes from
//!   `RAYON_NUM_THREADS` (falling back to the hardware count);
//!   [`current_num_threads`] reports the worker's own pool from inside a
//!   pool, and the innermost `install` elsewhere, restored panic-safely by
//!   an RAII guard.

mod iter;
mod registry;
mod sort;

pub use iter::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut, Producer};
pub use registry::{join, scope, Scope};

use registry::{PoolOverrideGuard, Registry};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Returns the number of threads parallel work dispatched from this thread
/// would run on: the current worker's pool, else the innermost
/// [`ThreadPool::install`], else the global pool (`RAYON_NUM_THREADS` or
/// the hardware parallelism).
pub fn current_num_threads() -> usize {
    registry::current_width()
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means "hardware default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its worker threads (none for width 1).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        let (registry, workers) = Registry::new(threads);
        Ok(ThreadPool { registry, workers })
    }
}

/// A pool of worker threads. Parallel work dispatched inside
/// [`ThreadPool::install`] executes on this pool's workers (a width-1 pool
/// runs everything inline on the installing thread).
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `f` with this pool as the target of parallel dispatch:
    /// `join`/`par_*` calls inside `f` execute on the pool's workers, and
    /// [`current_num_threads`] reports the pool's width.
    ///
    /// The dispatch override is restored by an RAII guard, so it is
    /// panic-safe: an unwinding `f` cannot leave the thread pointing at
    /// this pool (the old thread-local-width shim leaked its override on
    /// panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = PoolOverrideGuard::push(Arc::clone(&self.registry));
        f()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.width()
    }
}

impl Drop for ThreadPool {
    /// Shuts the workers down. All parallel entry points block until their
    /// work completes, so no jobs can be outstanding here; workers exit as
    /// soon as they observe the terminate flag.
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The usual `use rayon::prelude::*` import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn slice_combinators_match_sequential() {
        let xs: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[999], 1998);
        let total: u32 = xs.par_iter().copied().sum();
        assert_eq!(total, 499_500);
        let evens = xs.par_iter().filter(|x| **x % 2 == 0).count();
        assert_eq!(evens, 500);
        let max = xs.par_iter().copied().reduce(|| 0, u32::max);
        assert_eq!(max, 999);
    }

    #[test]
    fn range_into_par_iter_and_zip() {
        let squares: Vec<usize> = (0usize..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[3], 9);
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0, 6.0];
        let dot: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(dot, 32.0);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_thread_count_after_panic() {
        let outside = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| -> usize { panic!("boom") })
        }));
        assert!(result.is_err());
        // The RAII guard must have popped the override despite the panic.
        assert_eq!(crate::current_num_threads(), outside);
    }

    #[test]
    fn par_sorts() {
        let mut xs = vec![5, 1, 4, 2, 3];
        xs.par_sort_unstable();
        assert_eq!(xs, vec![1, 2, 3, 4, 5]);
        xs.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(xs, vec![5, 4, 3, 2, 1]);
        let mut big: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b9) % 4096)
            .collect();
        let mut expect = big.clone();
        expect.sort_unstable();
        big.par_sort_unstable();
        assert_eq!(big, expect);
    }

    #[test]
    fn join_runs_both_and_propagates_panic() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!((a, b.as_str()), (2, "xy"));
        let caught = std::panic::catch_unwind(|| crate::join(|| (), || panic!("right side")));
        assert!(caught.is_err());
    }

    #[test]
    fn join_executes_on_pool_workers() {
        // With a 2-wide pool, both join arms must be able to run
        // concurrently: rendezvous through a pair of atomic counters with a
        // timeout (plain spinning would deadlock if join were sequential).
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let arrived = AtomicUsize::new(0);
        let rendezvous = || {
            arrived.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while arrived.load(Ordering::SeqCst) < 2 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "join arms never overlapped"
                );
                std::thread::yield_now();
            }
        };
        pool.install(|| crate::join(rendezvous, rendezvous));
        assert_eq!(arrived.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn collect_into_vec_reuses_exact_length_buffer() {
        let xs: Vec<usize> = (0..50_000).collect();
        // Pre-sized buffer: in-place parallel write, order preserved.
        let mut out = vec![0usize; xs.len()];
        xs.par_iter().map(|&x| x + 1).collect_into_vec(&mut out);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
        // Reuse across calls with a different map: still ordered.
        xs.par_iter().map(|&x| x * 2).collect_into_vec(&mut out);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
        // Wrong-size buffer falls back to an ordinary ordered collect.
        let mut small: Vec<usize> = Vec::new();
        xs.par_iter().map(|&x| x + 7).collect_into_vec(&mut small);
        assert_eq!(small.len(), xs.len());
        assert!(small.iter().enumerate().all(|(i, &v)| v == i + 7));
    }

    #[test]
    fn collect_preserves_order_on_wide_pool() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let xs: Vec<usize> = (0..200_000).collect();
        let out: Vec<usize> = pool.install(|| xs.par_iter().map(|&x| x * 3).collect());
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        let odds: Vec<usize> =
            pool.install(|| xs.par_iter().copied().filter(|x| x % 2 == 1).collect());
        assert_eq!(odds.len(), 100_000);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }
}
