//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of rayon's API that the `parsdd` crates use, with the same
//! types-and-traits shape but *sequential* execution. Every `par_*` entry
//! point is semantically identical to its rayon counterpart (same results,
//! same ordering guarantees for the deterministic combinators), which keeps
//! the algorithm code written against rayon idioms compiling unchanged.
//! Swapping in the real crate later is a one-line Cargo.toml change.
//!
//! Implemented surface:
//! - `prelude::*` with `par_iter`, `par_iter_mut`, `par_chunks`,
//!   `into_par_iter`, and the `par_sort_unstable*` family;
//! - the iterator adaptors the codebase chains on those entry points
//!   (`map`, `filter`, `zip`, `enumerate`, `for_each`, `sum`, `reduce`, …);
//! - `current_num_threads`, `ThreadPoolBuilder` / `ThreadPool::install`
//!   (the configured thread count is tracked thread-locally so scaling
//!   harness code observes the value it configured);
//! - `join` / `spawn`-free subset only: nothing in the tree uses scoped
//!   tasks.

use std::cell::Cell;
use std::cmp::Ordering;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Returns the number of threads in the "current pool": the value
/// configured by an enclosing [`ThreadPool::install`], else the hardware
/// parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(hardware_threads)
}

/// Runs both closures and returns both results (sequentially, `a` first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    let ra = a();
    let rb = b();
    (ra, rb)
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means "hardware default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A "thread pool" that records its configured width and runs closures on
/// the calling thread.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with [`current_num_threads`] reporting this pool's width.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.threads)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// The "parallel" iterator: a thin wrapper over a std iterator exposing
/// rayon's method names.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Applies `f` to each item.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keeps items satisfying `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(pred))
    }

    /// Maps and filters in one pass.
    pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to an iterable and flattens.
    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Maps each item to a *serial* iterable and flattens (rayon's
    /// `flat_map_iter`; identical to `flat_map` in this shim).
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Rayon-style reduce without an identity; `None` on empty input.
    pub fn reduce_with<OP>(self, op: OP) -> Option<I::Item>
    where
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.reduce(op)
    }

    /// Pairs items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips with another parallel iterator.
    pub fn zip<J>(
        self,
        other: J,
    ) -> ParIter<std::iter::Zip<I, <J as IntoParallelIterator>::IntoIter>>
    where
        J: IntoParallelIterator,
    {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Runs `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collects into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce with an identity constructor.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum item, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum by a comparator.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> Ordering>(self, f: F) -> Option<I::Item> {
        self.0.min_by(f)
    }

    /// Maximum by a comparator.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> Ordering>(self, f: F) -> Option<I::Item> {
        self.0.max_by(f)
    }

    /// Tests whether all items satisfy `pred`.
    pub fn all<F: FnMut(I::Item) -> bool>(mut self, mut pred: F) -> bool {
        self.0.all(&mut pred)
    }

    /// Tests whether any item satisfies `pred`.
    pub fn any<F: FnMut(I::Item) -> bool>(mut self, mut pred: F) -> bool {
        self.0.any(&mut pred)
    }

    /// No-op chunking hint (rayon tuning knob).
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// No-op chunking hint (rayon tuning knob).
    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }
}

impl<'a, T: 'a + Copy, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Copies out of references.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

impl<'a, T: 'a + Clone, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Clones out of references.
    pub fn cloned(self) -> ParIter<std::iter::Cloned<I>> {
        ParIter(self.0.cloned())
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented for everything
/// iterable so ranges, vectors, and `ParIter` itself all work.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying iterator type.
    type IntoIter: Iterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type IntoIter = I::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Shared-slice parallel entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel iterator over chunks of up to `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    /// Parallel iterator over overlapping windows of `size` items.
    fn par_windows(&self, size: usize) -> ParIter<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
    fn par_windows(&self, size: usize) -> ParIter<std::slice::Windows<'_, T>> {
        ParIter(self.windows(size))
    }
}

/// Mutable-slice parallel entry points (`par_iter_mut`, sorts).
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over mutable chunks of up to `size` items.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort with a comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, cmp: F);
    /// Unstable sort by key.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    /// Stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Stable sort with a comparator.
    fn par_sort_by<F: FnMut(&T, &T) -> Ordering>(&mut self, cmp: F);
    /// Stable sort by key.
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, cmp: F) {
        self.sort_unstable_by(cmp)
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key)
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort()
    }
    fn par_sort_by<F: FnMut(&T, &T) -> Ordering>(&mut self, cmp: F) {
        self.sort_by(cmp)
    }
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_by_key(key)
    }
}

/// The usual `use rayon::prelude::*` import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_combinators_match_sequential() {
        let xs: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[999], 1998);
        let total: u32 = xs.par_iter().copied().sum();
        assert_eq!(total, 499_500);
        let evens = xs.par_iter().filter(|x| **x % 2 == 0).count();
        assert_eq!(evens, 500);
        let max = xs.par_iter().copied().reduce(|| 0, u32::max);
        assert_eq!(max, 999);
    }

    #[test]
    fn range_into_par_iter_and_zip() {
        let squares: Vec<usize> = (0usize..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[3], 9);
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0, 6.0];
        let dot: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(dot, 32.0);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn par_sorts() {
        let mut xs = vec![5, 1, 4, 2, 3];
        xs.par_sort_unstable();
        assert_eq!(xs, vec![1, 2, 3, 4, 5]);
        xs.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(xs, vec![5, 4, 3, 2, 1]);
    }
}
