//! The work-stealing runtime behind the shim: worker registries, Chase-Lev
//! deques, job references, latches, the blocking [`join`], and the
//! [`scope`]/[`Scope::spawn`] surface for non-binary task graphs.
//!
//! This module is the only place in the shim (and, by policy, in the whole
//! workspace outside `parutil::SyncMutPtr`) that uses `unsafe`. The unsafety
//! is the classic rayon pattern: a [`StackJob`] lives on the stack of the
//! thread that posts it, a type-erased [`JobRef`] pointing into that stack
//! frame is pushed onto a deque, and the poster *always* blocks until the
//! job's latch is set before letting the frame die — so the pointer can
//! never dangle. Scope jobs are heap-allocated instead ([`HeapJob`]) and
//! freed by whoever executes them; the scope blocks on a pending-counter
//! before returning, so a spawned closure can likewise never outlive the
//! borrows it captures.
//!
//! ## The Chase-Lev deques
//!
//! Each worker owns a [`ChaseLev`] deque of single-word job pointers. The
//! owner pushes and takes at the *bottom* (LIFO: depth-first, cache-hot);
//! thieves steal from the *top* (FIFO: the oldest job is the largest
//! unsplit subtree). Owner operations are wait-free except when the deque
//! holds exactly one job, where owner and thief race through one CAS on
//! `top`; steals are lock-free (a failed CAS means some other thread made
//! progress). This replaces the earlier `Mutex<VecDeque>` implementation
//! behind the exact same [`Registry::push_local`]/[`Registry::find_work`]
//! seam — fine-grained joins no longer serialize on a per-worker lock.
//!
//! **Why slots are a single word.** A deque slot may be read by a thief
//! *while* the owner overwrites it (the thief then fails its CAS and
//! discards the value). That torn read is only harmless if the slot is one
//! atomic machine word, so [`JobRef`] is a single pointer to a
//! [`JobHeader`] — a vtable-of-one embedded as the *first* field
//! (`#[repr(C)]`) of every concrete job type.
//!
//! **Memory-ordering argument** (after Lê–Pop–Cohen–Nardelli, "Correct and
//! Efficient Work-Stealing for Weak Memory Models", PPoPP'13):
//!
//! * `push` writes the slot, then publishes with a `Release` store of
//!   `bottom`; a thief's `Acquire` load of `bottom` therefore sees the slot
//!   contents written before it.
//! * `take` decrements `bottom`, then issues a `SeqCst` fence before
//!   reading `top`. `steal` reads `top` then issues a `SeqCst` fence before
//!   reading `bottom`. These two fences order the owner's decrement against
//!   the thief's read on the single global order: at most one of "owner
//!   believes the last job is safely below the thief frontier" and "thief
//!   believes the last job is above the owner's bottom" can hold, so the
//!   final element is never handed out twice without the CAS tiebreak.
//! * Both `take` (last-element case) and `steal` claim elements by a
//!   `SeqCst` compare-exchange on `top` — the unique linearization point
//!   for ownership transfer of a job.
//!
//! **Buffer growth.** When full, the owner allocates a buffer of twice the
//! capacity, copies the live window `[top, bottom)`, and publishes it with
//! a `Release` store. The old buffer is *retired, not freed*: a concurrent
//! thief may still read a slot from it (the live window occupies the same
//! logical indices, and the owner never writes a retired buffer again, so
//! such reads see valid, current values — the CAS on `top` still decides
//! ownership). Retired buffers are reclaimed only when the deque is
//! dropped, which happens after every worker has exited.
//!
//! ## Sleeping
//!
//! Pushes are lock-free, so the old bump-an-epoch-under-a-mutex wake
//! protocol is gone. Instead, wakeups use a Dekker-style `SeqCst` handshake
//! on the `idle` counter: a parking worker (a) takes the sleep lock,
//! (b) increments `idle` with `SeqCst`, (c) re-scans every queue, and only
//! then waits on the condvar; a pusher publishes its job, issues a `SeqCst`
//! fence, and notifies (under the lock) iff it reads `idle > 0`. On the
//! single total order, either the pusher sees the sleeper's increment or
//! the sleeper's re-scan sees the pushed job — a wakeup cannot be lost. A
//! timeout bounds the damage of any future bug here.

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// How long an idle worker sleeps before re-scanning even without a wakeup.
/// The `idle`-counter handshake (module docs) means wakeups are never
/// actually lost, so this is purely belt-and-braces; it is kept long so an
/// idle pool costs ~1 wake per worker per second instead of busy-polling.
const IDLE_SLEEP: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------------------
// Jobs and latches
// ---------------------------------------------------------------------------

/// One-entry vtable embedded as the **first** field of every concrete job
/// type (`#[repr(C)]` makes the pointers interconvertible). `execute`
/// receives the pointer to the header, i.e. to the whole job.
pub(crate) struct JobHeader {
    execute: unsafe fn(*const JobHeader),
}

/// A type-erased pointer to a job waiting to run — a single machine word so
/// that a Chase-Lev slot can hold it atomically. The pointee is either a
/// [`StackJob`] pinned on some thread's stack (see the module docs for the
/// liveness argument) or a [`HeapJob`] freed by its executor.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobRef {
    ptr: *const JobHeader,
}

// SAFETY: a JobRef is only ever executed once, and the job it points to
// synchronizes handoff through its latch (StackJob) or pending counter
// (HeapJob via Scope).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job.
    ///
    /// # Safety
    /// `self.ptr` must still be live (guaranteed by the poster blocking on
    /// the latch / scope counter) and the job must not have been executed
    /// before.
    pub(crate) unsafe fn execute(self) {
        ((*self.ptr).execute)(self.ptr)
    }

    /// Identity used to recognise our own job at the bottom of the deque.
    fn id(&self) -> *const () {
        self.ptr as *const ()
    }
}

/// Completion signal for a job. Implementations differ in how the waiter
/// blocks: workers spin-and-steal, external threads park on a condvar.
pub(crate) trait Latch {
    /// Marks the job complete and wakes any waiter.
    fn set(&self);
}

/// Latch for waiters that keep stealing while they wait (worker threads).
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Latch for external (non-worker) threads: parks on a condvar.
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        while !*done {
            done = self.cv.wait(done).expect("latch poisoned");
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        *done = true;
        self.cv.notify_all();
    }
}

/// Outcome slot of a [`StackJob`].
pub(crate) enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A job pinned on the posting thread's stack: the closure, a slot for its
/// result (or panic payload), and the latch the poster waits on. The
/// [`JobHeader`] sits first so a `JobRef` to it is a single word.
#[repr(C)]
pub(crate) struct StackJob<L: Latch, F, R> {
    header: JobHeader,
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// SAFETY: access to `func`/`result` is handed off through `latch`: the
// executor is the only toucher before `set`, the poster the only one after.
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Type-erases a pointer to this job.
    ///
    /// # Safety
    /// The caller must keep `self` alive and pinned until the latch is set,
    /// and must ensure the returned ref is executed at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            ptr: &self.header as *const JobHeader,
        }
    }

    /// Identity used to recognise our own job at the bottom of the deque.
    /// Equal to the matching `JobRef::id()` because the header is the first
    /// field of a `#[repr(C)]` struct.
    pub(crate) fn id(&self) -> *const () {
        self as *const Self as *const ()
    }

    unsafe fn execute_erased(ptr: *const JobHeader) {
        let this = &*(ptr as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        let outcome = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panicked(payload),
        };
        *this.result.get() = outcome;
        this.latch.set();
    }

    /// Extracts the outcome after the latch has been observed set.
    ///
    /// # Safety
    /// Must only be called after the latch is set (i.e. the executor is
    /// done writing) and at most once.
    pub(crate) unsafe fn take_outcome(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::Pending)
    }

    /// Extracts the result after the latch has been observed set,
    /// propagating a panic from the job onto the calling thread.
    ///
    /// # Safety
    /// Same contract as [`StackJob::take_outcome`].
    pub(crate) unsafe fn take_result(&self) -> R {
        match self.take_outcome() {
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("latch set but job result missing"),
        }
    }
}

/// A heap-allocated fire-and-forget job (used by [`Scope::spawn`]): the box
/// is consumed — and freed — by whichever thread executes it.
#[repr(C)]
struct HeapJob<F> {
    header: JobHeader,
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    fn new(func: F) -> Box<Self> {
        Box::new(HeapJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            func,
        })
    }

    /// Type-erases the box into a job pointer. The executor reconstitutes
    /// and drops the box, so the caller must ensure the ref is executed
    /// exactly once (the scope's pending counter enforces this).
    fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            ptr: Box::into_raw(self) as *const JobHeader,
        }
    }

    unsafe fn execute_erased(ptr: *const JobHeader) {
        let this = Box::from_raw(ptr as *mut Self);
        (this.func)();
    }
}

// ---------------------------------------------------------------------------
// The Chase-Lev work-stealing deque
// ---------------------------------------------------------------------------

/// Result of a steal attempt. `Retry` means a racing owner/thief won the
/// CAS — the deque may still be non-empty, so the caller should try again.
enum Steal {
    Empty,
    Retry,
    Success(JobRef),
}

/// A growable ring of job-pointer slots. Slots are atomic words (not plain
/// memory) because a thief may read a slot the owner is concurrently
/// overwriting — the thief's CAS on `top` then fails and the torn-free
/// atomic value is discarded.
struct CircularBuffer {
    slots: Box<[AtomicPtr<JobHeader>]>,
}

impl CircularBuffer {
    fn new(capacity: usize) -> Box<Self> {
        debug_assert!(capacity.is_power_of_two());
        Box::new(CircularBuffer {
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        })
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn read(&self, index: isize) -> *mut JobHeader {
        self.slots[index as usize & (self.slots.len() - 1)].load(Ordering::Relaxed)
    }

    fn write(&self, index: isize, value: *const JobHeader) {
        self.slots[index as usize & (self.slots.len() - 1)]
            .store(value as *mut JobHeader, Ordering::Relaxed);
    }
}

/// Lock-free work-stealing deque (Chase & Lev, SPAA'05, with the C11
/// orderings of Lê–Pop–Cohen–Nardelli, PPoPP'13). Owner operates on the
/// bottom (`push`/`take`), thieves on the top (`steal`). See the module
/// docs for the full memory-ordering argument.
pub(crate) struct ChaseLev {
    /// Steal frontier; only ever advanced by a successful `SeqCst` CAS.
    top: AtomicIsize,
    /// Owner's end; written only by the owner.
    bottom: AtomicIsize,
    /// Current ring buffer; replaced (never mutated in place) on growth.
    buffer: AtomicPtr<CircularBuffer>,
    /// Buffers replaced by growth, kept alive until `Drop` because a
    /// concurrent thief may still be reading from one.
    retired: Mutex<Vec<*mut CircularBuffer>>,
}

// SAFETY: all cross-thread state is atomics; the retired list is behind a
// mutex and raw buffer pointers are only freed once no thread can touch
// them (Drop runs after the owning registry's workers have exited).
unsafe impl Send for ChaseLev {}
unsafe impl Sync for ChaseLev {}

impl ChaseLev {
    fn new() -> Self {
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(CircularBuffer::new(64))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-only: pushes a job at the bottom.
    fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: the buffer pointer is always valid (retired buffers are
        // never freed while the deque lives).
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.capacity() as isize {
            buf = self.grow(t, b);
        }
        buf.write(b, job.ptr);
        // Publish: a thief that Acquire-loads the new bottom sees the slot.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops the most recently pushed job, racing thieves for
    /// the final element.
    fn take(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: see `push`.
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement against any thief's top-read (module
        // docs: the take/steal SeqCst fence pair).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let ptr = buf.read(b);
            if t == b {
                // Single element left: the CAS on `top` decides whether we
                // beat a concurrent thief to it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            Some(JobRef { ptr })
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief: claims the oldest job, if any.
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // Order our top-read against the owner's bottom decrement (the
        // counterpart of the fence in `take`).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            // SAFETY: see `push`; an Acquire load pairs with the Release
            // store in `grow` so the copied window is visible.
            let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
            let ptr = buf.read(t);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Lost the element to the owner or another thief; the value
                // read above is discarded unexecuted.
                return Steal::Retry;
            }
            Steal::Success(JobRef { ptr })
        } else {
            Steal::Empty
        }
    }

    /// Cheap emptiness probe for the pre-park re-scan. May spuriously say
    /// "non-empty" for a job that is being claimed — that only costs the
    /// scanner one more loop.
    fn looks_nonempty(&self) -> bool {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        t < b
    }

    /// Owner-only: doubles the buffer, copying the live window. The old
    /// buffer is retired, not freed — see the module docs.
    fn grow(&self, t: isize, b: isize) -> &CircularBuffer {
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: see `push`.
        let old = unsafe { &*old_ptr };
        let new = CircularBuffer::new(old.capacity() * 2);
        for i in t..b {
            new.write(i, old.read(i));
        }
        let new_ptr = Box::into_raw(new);
        self.buffer.store(new_ptr, Ordering::Release);
        self.retired.lock().expect("retired poisoned").push(old_ptr);
        // SAFETY: just stored; valid until the next grow retires it.
        unsafe { &*new_ptr }
    }
}

impl Drop for ChaseLev {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no concurrent owner or thief exists,
        // so the current and retired buffers can finally be freed.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for ptr in self.retired.lock().expect("retired poisoned").drain(..) {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A set of worker threads with their deques: one per [`crate::ThreadPool`],
/// plus a lazily created global one.
pub(crate) struct Registry {
    width: usize,
    /// Per-worker Chase-Lev deques; owner pushes/takes bottom, thieves
    /// steal top.
    deques: Vec<ChaseLev>,
    /// Jobs injected by non-worker threads.
    injected: Mutex<VecDeque<JobRef>>,
    /// Lock the condvar parks on; held only around park/notify, never
    /// around deque operations.
    sleep: Mutex<()>,
    sleep_cv: Condvar,
    /// Number of workers currently inside the park protocol. Part of the
    /// SeqCst wakeup handshake described in the module docs.
    idle: AtomicUsize,
    terminate: AtomicBool,
}

thread_local! {
    /// Set on worker threads: the registry they belong to and their index.
    static WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
    /// Stack of `ThreadPool::install` overrides on non-worker threads.
    static POOL_OVERRIDE: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Reads the `RAYON_NUM_THREADS` equivalent: explicit positive value wins,
/// anything else falls back to the hardware parallelism.
fn default_width() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(default_width()).0)
}

/// The width the *current* context would run parallel work at: the worker's
/// own registry, an enclosing `install`, or the (maybe not yet spawned)
/// global pool.
pub(crate) fn current_width() -> usize {
    if let Some((reg, _)) = WORKER.with(|w| w.get()) {
        // SAFETY: the registry outlives its worker threads (each holds an
        // Arc), and we are on one of them.
        return unsafe { (*reg).width };
    }
    if let Some(w) = POOL_OVERRIDE.with(|s| s.borrow().last().map(|r| r.width)) {
        return w;
    }
    static GLOBAL_WIDTH: OnceLock<usize> = OnceLock::new();
    *GLOBAL_WIDTH.get_or_init(default_width)
}

/// RAII guard that makes `registry` the target of parallel dispatch on this
/// thread for its lifetime. Restoration happens in `Drop`, so an unwinding
/// panic inside `ThreadPool::install` cannot leave the override stack stale
/// (the bug the old thread-local `POOL_THREADS` hack had).
pub(crate) struct PoolOverrideGuard;

impl PoolOverrideGuard {
    pub(crate) fn push(registry: Arc<Registry>) -> Self {
        POOL_OVERRIDE.with(|s| s.borrow_mut().push(registry));
        PoolOverrideGuard
    }
}

impl Drop for PoolOverrideGuard {
    fn drop(&mut self) {
        POOL_OVERRIDE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

impl Registry {
    /// Creates a registry of the given width and spawns its workers
    /// (none for width ≤ 1). Returns the registry and the worker handles.
    pub(crate) fn new(width: usize) -> (Arc<Registry>, Vec<thread::JoinHandle<()>>) {
        let width = width.max(1);
        let registry = Arc::new(Registry {
            width,
            deques: (0..width).map(|_| ChaseLev::new()).collect(),
            injected: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            sleep_cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
        });
        let mut handles = Vec::new();
        if width > 1 {
            for index in 0..width {
                let reg = Arc::clone(&registry);
                handles.push(
                    thread::Builder::new()
                        .name(format!("parsdd-rayon-{index}"))
                        .spawn(move || worker_main(reg, index))
                        .expect("failed to spawn worker thread"),
                );
            }
        }
        (registry, handles)
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Signals workers to exit once their deques drain.
    pub(crate) fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
        let _guard = self.sleep.lock().expect("sleep lock poisoned");
        self.sleep_cv.notify_all();
    }

    /// True when the calling thread is one of this registry's workers.
    fn on_worker(&self) -> bool {
        WORKER.with(|w| w.get()).map(|(reg, _)| reg) == Some(self as *const Registry)
    }

    /// Pusher half of the wakeup handshake: after publishing a job, a
    /// `SeqCst` fence orders that publish against the `idle` read — see
    /// the module docs for why this cannot lose a wakeup.
    fn notify(&self) {
        fence(Ordering::SeqCst);
        if self.idle.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep.lock().expect("sleep lock poisoned");
            self.sleep_cv.notify_all();
        }
    }

    /// Pushes a job onto worker `index`'s deque (owner end).
    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].push(job);
        self.notify();
    }

    /// Owner-only: pops the bottom of worker `index`'s deque.
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].take()
    }

    /// Queues a job from outside the pool.
    fn inject(&self, job: JobRef) {
        self.injected
            .lock()
            .expect("inject queue poisoned")
            .push_back(job);
        self.notify();
    }

    /// Finds a runnable job for worker `index`: own deque (bottom), then
    /// the inject queue, then the other workers' deques (top).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].take() {
            return Some(job);
        }
        if let Some(job) = self
            .injected
            .lock()
            .expect("inject queue poisoned")
            .pop_front()
        {
            return Some(job);
        }
        self.steal(index)
    }

    /// Steals the oldest job from some other worker's deque, retrying a
    /// victim whose steal raced (a lost CAS means someone else progressed).
    fn steal(&self, index: usize) -> Option<JobRef> {
        let width = self.width;
        for offset in 1..width {
            let victim = (index + offset) % width;
            loop {
                match self.deques[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        // Non-workers inject; check again so a waiter can also drain those.
        self.injected
            .lock()
            .expect("inject queue poisoned")
            .pop_front()
    }

    /// Pre-park re-scan: anything plausibly runnable anywhere?
    fn any_work(&self) -> bool {
        if self.deques.iter().any(ChaseLev::looks_nonempty) {
            return true;
        }
        !self
            .injected
            .lock()
            .expect("inject queue poisoned")
            .is_empty()
    }

    /// Runs `op` on a thread where work-stealing `join` is available: inline
    /// when already on one of this registry's workers (or when the pool is
    /// width 1), otherwise injected into the pool while the caller blocks.
    pub(crate) fn in_worker<F, R>(self: &Arc<Self>, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.width <= 1 || self.on_worker() {
            return op();
        }
        let job = StackJob::new(LockLatch::new(), op);
        // SAFETY: `job` stays pinned on this stack frame and we block on its
        // latch below before returning; the ref is injected exactly once.
        unsafe {
            self.inject(job.as_job_ref());
            job.latch().wait();
            job.take_result()
        }
    }
}

/// Main loop of a worker thread.
fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    loop {
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        if let Some(job) = registry.find_work(index) {
            // SAFETY: every queued JobRef's poster is blocked on its latch
            // or scope counter, so the pointee is live; each ref is queued
            // (hence run) once.
            unsafe { job.execute() };
            continue;
        }
        // Sleeper half of the wakeup handshake: advertise idleness with
        // SeqCst, re-scan, and only then wait — under the lock, so a
        // notify between the re-scan and the wait cannot be missed.
        let guard = registry.sleep.lock().expect("sleep lock poisoned");
        registry.idle.fetch_add(1, Ordering::SeqCst);
        if !registry.any_work() && !registry.terminate.load(Ordering::Acquire) {
            let _ = registry
                .sleep_cv
                .wait_timeout(guard, IDLE_SLEEP)
                .expect("sleep lock poisoned");
        }
        registry.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// On a worker thread this is the real work-stealing protocol: `b` is
/// published on the local deque for thieves, `a` runs inline, and the worker
/// then either reclaims `b` (the common, steal-free case — one owner-side
/// `take`, wait-free unless the deque is down to one job) or helps execute
/// other jobs until the thief finishes `b`. Off the pool, the whole call is
/// shipped to a worker first. With an effective width of 1 it is exactly
/// `(a(), b())`.
///
/// Panic semantics match rayon: if either closure panics the panic is
/// propagated, but only after both closures have come to rest (so no
/// stolen-job pointer can outlive its stack frame).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((reg, index)) = WORKER.with(|w| w.get()) {
        // SAFETY: we are on a live worker of `reg` (the worker's Arc keeps
        // the registry alive for the duration of this call).
        return unsafe { join_on_worker(&*reg, index, a, b) };
    }
    let registry = POOL_OVERRIDE.with(|s| s.borrow().last().cloned());
    let registry = match registry {
        Some(r) => r,
        None if current_width() <= 1 => return (a(), b()),
        None => Arc::clone(global_registry()),
    };
    if registry.width() <= 1 {
        return (a(), b());
    }
    registry.in_worker(move || join(a, b))
}

/// The worker-side join protocol. See [`join`].
///
/// # Safety
/// Must be called on worker `index` of `registry`.
unsafe fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let b_job = StackJob::new(SpinLatch::new(), b);
    // SAFETY: b_job is pinned on this frame; below we always wait until it
    // has run (inline or by a thief) before the frame can unwind.
    registry.push_local(index, b_job.as_job_ref());

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    // Try to reclaim `b` from the bottom of our own deque. An owner-side
    // `take` pops unconditionally, so we may get back a *different* job: an
    // ancestor join's `b` that became our bottom after ours was stolen. In
    // that case we put it straight back (it was the bottom element, so an
    // owner push restores its exact position) and fall into the steal-wait
    // loop — we never run an ancestor's job from here by accident.
    let mut reclaimed = false;
    if let Some(job) = registry.pop_local(index) {
        if job.id() == b_job.id() {
            job.execute();
            reclaimed = true;
        } else {
            registry.push_local(index, job);
        }
    }
    if !reclaimed {
        // Stolen (or about to be): keep useful while the thief works. Only
        // other deques and the inject queue are touched — popping our own
        // deque again here could run an *ancestor* join's pending job out
        // of order on this stack.
        let mut spins = 0u32;
        while !b_job.latch().probe() {
            if let Some(job) = registry.steal(index) {
                job.execute();
                spins = 0;
            } else {
                spins += 1;
                if spins < 64 {
                    thread::yield_now();
                } else {
                    thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    let rb = b_job.take_outcome();
    match (ra, rb) {
        (Ok(ra), JobResult::Ok(rb)) => (ra, rb),
        // a's panic takes precedence; b's payload (if any) is dropped.
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, JobResult::Panicked(payload)) => panic::resume_unwind(payload),
        (_, JobResult::Pending) => unreachable!("latch set but join job never ran"),
    }
}

// ---------------------------------------------------------------------------
// scope / spawn
// ---------------------------------------------------------------------------

/// A scope for spawning an arbitrary number of tasks that may borrow from
/// the enclosing stack frame (lifetime `'scope`). Created by [`scope`];
/// tasks are spawned with [`Scope::spawn`].
pub struct Scope<'scope> {
    /// `None` → width-1 context: spawns execute inline, immediately.
    registry: Option<Arc<Registry>>,
    /// Spawned-but-unfinished job count; [`scope`] blocks until it is 0.
    pending: AtomicUsize,
    /// First panic from a spawned task, propagated when the scope closes.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant in `'scope` (mirrors rayon): the scope must not be usable
    /// with a shorter borrow than the one `scope` was called with.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    fn new(registry: Option<Arc<Registry>>) -> Self {
        Scope {
            registry,
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            marker: PhantomData,
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        // Keep the first payload; later ones are dropped, like rayon.
        slot.get_or_insert(payload);
    }

    /// Spawns `body` into the scope's pool. The closure may borrow anything
    /// that outlives `'scope`; [`scope`] does not return until every
    /// spawned closure has finished. Panics in spawned closures are
    /// captured and re-thrown (first one wins) when the scope closes.
    ///
    /// Spawned tasks run in *nondeterministic order* relative to each other
    /// and the scope body — callers that need reproducible numerics must
    /// give each task disjoint outputs (the same discipline the iterator
    /// layer's split trees follow).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let registry = match &self.registry {
            None => {
                // Width-1 scope: run inline right now, matching the
                // "spawns complete before scope returns" contract trivially.
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
                    self.store_panic(payload);
                }
                return;
            }
            Some(reg) => Arc::clone(reg),
        };
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Type-erase the self-borrow: the heap job may outlive this `&self`
        // borrow lexically, but never dynamically — `scope` blocks until
        // `pending` drains, and `pending` is only decremented after `body`
        // has returned.
        let scope_ptr = self as *const Scope<'scope> as usize;
        let job = HeapJob::new(move || {
            // SAFETY: see above — the Scope outlives every spawned job.
            let scope = unsafe { &*(scope_ptr as *const Scope<'scope>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.store_panic(payload);
            }
            scope.pending.fetch_sub(1, Ordering::Release);
        })
        .into_job_ref();
        if let Some((reg_ptr, index)) = WORKER.with(|w| w.get()) {
            if reg_ptr == Arc::as_ptr(&registry) {
                registry.push_local(index, job);
                return;
            }
        }
        registry.inject(job);
    }
}

/// Creates a scope in which closures borrowing from the current stack frame
/// can be spawned ([`Scope::spawn`]); returns only after the scope body
/// *and every spawned closure* have finished. The rayon-compatible way to
/// express task graphs that don't fit nested binary [`join`]s.
///
/// Runs on the current worker when called from inside a pool, is shipped to
/// the ambient pool (an enclosing `install` or the global pool) otherwise,
/// and degenerates to inline execution at width 1.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    if let Some((reg, index)) = WORKER.with(|w| w.get()) {
        // SAFETY: we are on a live worker of `reg`.
        return unsafe { scope_on_worker(&*reg, index, op) };
    }
    let registry = POOL_OVERRIDE.with(|s| s.borrow().last().cloned());
    let registry = match registry {
        Some(r) => r,
        None if current_width() <= 1 => return inline_scope(op),
        None => Arc::clone(global_registry()),
    };
    if registry.width() <= 1 {
        return inline_scope(op);
    }
    registry.in_worker(move || scope(op))
}

/// Width-1 scope: every spawn executes immediately on this thread.
fn inline_scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope::new(None);
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    finish_scope(s, result)
}

/// The worker-side scope protocol: run the body, then help execute work
/// until every spawned job has drained.
///
/// # Safety
/// Must be called on worker `index` of `registry`.
unsafe fn scope_on_worker<'scope, OP, R>(registry: &Registry, index: usize, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    // A worker holds an Arc to its registry for its whole life; clone it
    // for the scope so spawn() can target it without re-resolving.
    // SAFETY (caller): `registry` is the current worker's registry, which
    // is Arc-managed and outlives this call.
    let registry_arc = {
        Arc::increment_strong_count(registry as *const Registry);
        Arc::from_raw(registry as *const Registry)
    };
    let s = Scope::new(Some(registry_arc));
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    // Help until every spawned job is done. Popping our own deque is
    // correct here (unlike the join wait): our bottom jobs are either our
    // own scope's spawns or descendants thereof, and running an ancestor
    // join's `b` early is harmless — its owner waits on the latch, not on
    // deque position.
    let mut spins = 0u32;
    while s.pending.load(Ordering::Acquire) > 0 {
        if let Some(job) = registry.find_work(index) {
            job.execute();
            spins = 0;
        } else {
            spins += 1;
            if spins < 64 {
                thread::yield_now();
            } else {
                thread::sleep(Duration::from_micros(50));
            }
        }
    }
    finish_scope(s, result)
}

/// Propagates panics with rayon's precedence (scope-body panic first, then
/// the first spawned panic) and returns the body's value.
fn finish_scope<R>(s: Scope<'_>, result: Result<R, Box<dyn Any + Send>>) -> R {
    debug_assert_eq!(s.pending.load(Ordering::Acquire), 0);
    let spawned_panic = s.panic.lock().expect("scope panic slot poisoned").take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = spawned_panic {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}

/// Dispatches `op` to a context where [`join`] can actually run in
/// parallel: the current worker, an `install`ed pool, or the global pool.
/// Used by the iterator layer for its top-level drives.
pub(crate) fn in_parallel_context<F, R>(op: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if WORKER.with(|w| w.get()).is_some() {
        return op();
    }
    let registry = POOL_OVERRIDE.with(|s| s.borrow().last().cloned());
    let registry = match registry {
        Some(r) => r,
        None if current_width() <= 1 => return op(),
        None => Arc::clone(global_registry()),
    };
    registry.in_worker(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct stress of one Chase-Lev deque: an owner thread pushes and
    /// takes while thieves hammer `steal`; every job must execute exactly
    /// once. (Jobs here are StackJobs pinned in a Vec that outlives all
    /// participants.)
    #[test]
    fn deque_steal_push_stress_executes_every_job_once() {
        use std::sync::atomic::AtomicUsize;

        const JOBS: usize = 10_000;
        const THIEVES: usize = 3;

        let deque = ChaseLev::new();
        let executed = AtomicUsize::new(0);
        let jobs: Vec<StackJob<SpinLatch, _, ()>> = (0..JOBS)
            .map(|_| {
                StackJob::new(SpinLatch::new(), || {
                    executed.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();

        let stop = AtomicBool::new(false);
        thread::scope(|ts| {
            for _ in 0..THIEVES {
                ts.spawn(|| loop {
                    match deque.steal() {
                        // SAFETY: jobs outlive the thread scope; the deque
                        // hands each ref out exactly once.
                        Steal::Success(job) => unsafe { job.execute() },
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                });
            }
            // Owner: push in bursts, take some back, forcing buffer growth
            // (initial capacity 64) and plenty of one-element CAS races.
            for (i, job) in jobs.iter().enumerate() {
                // SAFETY: each job is pushed once and the Vec outlives the
                // scope; take/steal hand out each ref at most once.
                unsafe { deque.push(job.as_job_ref()) };
                if i % 3 == 0 {
                    if let Some(job) = deque.take() {
                        unsafe { job.execute() };
                    }
                }
            }
            // Drain whatever the thieves haven't claimed.
            while let Some(job) = deque.take() {
                unsafe { job.execute() };
            }
            stop.store(true, Ordering::Release);
        });

        // Everything ran exactly once: the latch-guarded StackJob would
        // panic ("job executed twice") on a double execution, and the
        // count proves none were lost.
        assert_eq!(executed.load(Ordering::Relaxed), JOBS);
        assert!(jobs.iter().all(|j| j.latch().probe()));
    }

    /// The one-element owner/thief race: with exactly one job in the deque,
    /// repeated concurrent take/steal must never duplicate or lose it.
    #[test]
    fn deque_single_element_race_never_duplicates() {
        const ROUNDS: usize = 2_000;
        for _ in 0..ROUNDS {
            let deque = ChaseLev::new();
            let executed = AtomicUsize::new(0);
            let job = StackJob::new(SpinLatch::new(), || {
                executed.fetch_add(1, Ordering::Relaxed);
            });
            // SAFETY: `job` outlives the scope below; executed at most once
            // by construction of take/steal.
            unsafe { deque.push(job.as_job_ref()) };
            thread::scope(|ts| {
                let thief = ts.spawn(|| loop {
                    match deque.steal() {
                        Steal::Success(job) => {
                            unsafe { job.execute() };
                            break true;
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break false,
                    }
                });
                let owner_got = deque.take();
                if let Some(job) = owner_got {
                    unsafe { job.execute() };
                }
                let thief_got = thief.join().expect("thief panicked");
                assert!(
                    owner_got.is_some() ^ thief_got,
                    "single element must go to exactly one of owner/thief"
                );
            });
            assert_eq!(executed.load(Ordering::Relaxed), 1);
        }
    }

    /// Buffer growth under concurrent steals: push far past the initial
    /// capacity while a thief drains, then verify nothing was lost.
    #[test]
    fn deque_growth_during_steals_loses_nothing() {
        const JOBS: usize = 4_096; // 64× the initial capacity
        let deque = ChaseLev::new();
        let executed = AtomicUsize::new(0);
        let jobs: Vec<StackJob<SpinLatch, _, ()>> = (0..JOBS)
            .map(|_| {
                StackJob::new(SpinLatch::new(), || {
                    executed.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let done_pushing = AtomicBool::new(false);
        thread::scope(|ts| {
            ts.spawn(|| loop {
                match deque.steal() {
                    // SAFETY: as in the stress test above.
                    Steal::Success(job) => unsafe { job.execute() },
                    Steal::Retry => continue,
                    Steal::Empty => {
                        if done_pushing.load(Ordering::Acquire) {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            });
            for job in &jobs {
                // SAFETY: as in the stress test above.
                unsafe { deque.push(job.as_job_ref()) };
            }
            while let Some(job) = deque.take() {
                unsafe { job.execute() };
            }
            done_pushing.store(true, Ordering::Release);
        });
        assert_eq!(executed.load(Ordering::Relaxed), JOBS);
    }
}
