//! The work-stealing runtime behind the shim: worker registries, job
//! references, latches, and the blocking [`join`].
//!
//! This module is the only place in the shim (and, by policy, in the whole
//! workspace outside `parutil::SyncMutPtr`) that uses `unsafe`. The unsafety
//! is the classic rayon pattern: a [`StackJob`] lives on the stack of the
//! thread that posts it, a type-erased [`JobRef`] pointing into that stack
//! frame is pushed onto a deque, and the poster *always* blocks until the
//! job's latch is set before letting the frame die — so the pointer can
//! never dangle. Everything else (deques, sleeping, stealing) is ordinary
//! mutex-and-condvar code.
//!
//! Design notes:
//!
//! * **Deques.** Each worker owns a `Mutex<VecDeque<JobRef>>`. The owner
//!   pushes and pops at the back (LIFO, depth-first, cache-friendly);
//!   thieves steal from the front (FIFO — the oldest job is the largest
//!   unsplit subtree). A mutex deque is deliberately chosen over Chase-Lev:
//!   at the job granularities the iterator layer produces (thousands of
//!   items per leaf) the lock is not the bottleneck, and it keeps this file
//!   auditable. The deque type is an implementation detail of
//!   [`Registry::push_local`]/[`Registry::find_work`], so a lock-free deque
//!   can be swapped in without touching anything else.
//! * **Width-1 registries spawn no threads.** A pool of width 1 (the
//!   default on single-core machines, or `RAYON_NUM_THREADS=1`) executes
//!   everything inline on the calling thread; `join` degenerates to
//!   `(a(), b())`.
//! * **Sleeping.** Idle workers park on a condvar guarded by an epoch
//!   counter; every push bumps the epoch under the lock, so a worker can
//!   never sleep through a job that was pushed between its failed scan and
//!   its park. A short timeout bounds the damage of any future bug here.

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// How long an idle worker sleeps before re-scanning even without a wakeup.
/// The epoch-under-lock protocol means wakeups are never actually lost, so
/// this is purely belt-and-braces against a future bug there; it is kept
/// long so that an idle pool costs ~1 wake per worker per second instead
/// of busy-polling.
const IDLE_SLEEP: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------------------
// Jobs and latches
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job waiting to run. The pointee is a
/// [`StackJob`] pinned on some thread's stack; see the module docs for the
/// liveness argument.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the StackJob it points
// to synchronizes handoff through its latch.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job.
    ///
    /// # Safety
    /// `self.data` must still be live (guaranteed by the poster blocking on
    /// the latch) and the job must not have been executed before.
    pub(crate) unsafe fn execute(self) {
        (self.execute)(self.data)
    }
}

/// Completion signal for a job. Implementations differ in how the waiter
/// blocks: workers spin-and-steal, external threads park on a condvar.
pub(crate) trait Latch {
    /// Marks the job complete and wakes any waiter.
    fn set(&self);
}

/// Latch for waiters that keep stealing while they wait (worker threads).
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Latch for external (non-worker) threads: parks on a condvar.
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        while !*done {
            done = self.cv.wait(done).expect("latch poisoned");
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        *done = true;
        self.cv.notify_all();
    }
}

/// Outcome slot of a [`StackJob`].
pub(crate) enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A job pinned on the posting thread's stack: the closure, a slot for its
/// result (or panic payload), and the latch the poster waits on.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// SAFETY: access to `func`/`result` is handed off through `latch`: the
// executor is the only toucher before `set`, the poster the only one after.
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Type-erases a pointer to this job.
    ///
    /// # Safety
    /// The caller must keep `self` alive and pinned until the latch is set,
    /// and must ensure the returned ref is executed at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    /// Identity used to recognise our own job at the back of the deque.
    pub(crate) fn id(&self) -> *const () {
        self as *const Self as *const ()
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        let outcome = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panicked(payload),
        };
        *this.result.get() = outcome;
        this.latch.set();
    }

    /// Extracts the outcome after the latch has been observed set.
    ///
    /// # Safety
    /// Must only be called after the latch is set (i.e. the executor is
    /// done writing) and at most once.
    pub(crate) unsafe fn take_outcome(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::Pending)
    }

    /// Extracts the result after the latch has been observed set,
    /// propagating a panic from the job onto the calling thread.
    ///
    /// # Safety
    /// Same contract as [`StackJob::take_outcome`].
    pub(crate) unsafe fn take_result(&self) -> R {
        match self.take_outcome() {
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("latch set but job result missing"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A set of worker threads with their deques: one per [`crate::ThreadPool`],
/// plus a lazily created global one.
pub(crate) struct Registry {
    width: usize,
    /// Per-worker deques; owner pushes/pops back, thieves pop front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Jobs injected by non-worker threads.
    injected: Mutex<VecDeque<JobRef>>,
    /// Epoch counter + condvar for sleeping workers.
    sleep_epoch: Mutex<u64>,
    sleep_cv: Condvar,
    /// Number of workers currently parked (fast-path check for notify).
    idle: AtomicUsize,
    terminate: AtomicBool,
}

thread_local! {
    /// Set on worker threads: the registry they belong to and their index.
    static WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
    /// Stack of `ThreadPool::install` overrides on non-worker threads.
    static POOL_OVERRIDE: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Reads the `RAYON_NUM_THREADS` equivalent: explicit positive value wins,
/// anything else falls back to the hardware parallelism.
fn default_width() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(default_width()).0)
}

/// The width the *current* context would run parallel work at: the worker's
/// own registry, an enclosing `install`, or the (maybe not yet spawned)
/// global pool.
pub(crate) fn current_width() -> usize {
    if let Some((reg, _)) = WORKER.with(|w| w.get()) {
        // SAFETY: the registry outlives its worker threads (each holds an
        // Arc), and we are on one of them.
        return unsafe { (*reg).width };
    }
    if let Some(w) = POOL_OVERRIDE.with(|s| s.borrow().last().map(|r| r.width)) {
        return w;
    }
    static GLOBAL_WIDTH: OnceLock<usize> = OnceLock::new();
    *GLOBAL_WIDTH.get_or_init(default_width)
}

/// RAII guard that makes `registry` the target of parallel dispatch on this
/// thread for its lifetime. Restoration happens in `Drop`, so an unwinding
/// panic inside `ThreadPool::install` cannot leave the override stack stale
/// (the bug the old thread-local `POOL_THREADS` hack had).
pub(crate) struct PoolOverrideGuard;

impl PoolOverrideGuard {
    pub(crate) fn push(registry: Arc<Registry>) -> Self {
        POOL_OVERRIDE.with(|s| s.borrow_mut().push(registry));
        PoolOverrideGuard
    }
}

impl Drop for PoolOverrideGuard {
    fn drop(&mut self) {
        POOL_OVERRIDE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

impl Registry {
    /// Creates a registry of the given width and spawns its workers
    /// (none for width ≤ 1). Returns the registry and the worker handles.
    pub(crate) fn new(width: usize) -> (Arc<Registry>, Vec<thread::JoinHandle<()>>) {
        let width = width.max(1);
        let registry = Arc::new(Registry {
            width,
            deques: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            injected: Mutex::new(VecDeque::new()),
            sleep_epoch: Mutex::new(0),
            sleep_cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
        });
        let mut handles = Vec::new();
        if width > 1 {
            for index in 0..width {
                let reg = Arc::clone(&registry);
                handles.push(
                    thread::Builder::new()
                        .name(format!("parsdd-rayon-{index}"))
                        .spawn(move || worker_main(reg, index))
                        .expect("failed to spawn worker thread"),
                );
            }
        }
        (registry, handles)
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Signals workers to exit once their deques drain.
    pub(crate) fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
        self.notify();
    }

    /// True when the calling thread is one of this registry's workers.
    fn on_worker(&self) -> bool {
        WORKER.with(|w| w.get()).map(|(reg, _)| reg) == Some(self as *const Registry)
    }

    /// Bumps the sleep epoch and wakes parked workers. Called after every
    /// push so a concurrent "scan failed, about to park" worker re-scans.
    fn notify(&self) {
        {
            let mut epoch = self.sleep_epoch.lock().expect("sleep lock poisoned");
            *epoch += 1;
        }
        if self.idle.load(Ordering::Relaxed) > 0 {
            self.sleep_cv.notify_all();
        }
    }

    /// Pushes a job onto worker `index`'s deque (LIFO end).
    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index]
            .lock()
            .expect("deque poisoned")
            .push_back(job);
        self.notify();
    }

    /// Pops the back of worker `index`'s deque iff it is the job `id`.
    /// Returns true when the caller got its own job back.
    fn pop_local_if(&self, index: usize, id: *const ()) -> bool {
        let mut dq = self.deques[index].lock().expect("deque poisoned");
        if dq.back().map(|j| j.data) == Some(id) {
            dq.pop_back();
            true
        } else {
            false
        }
    }

    /// Queues a job from outside the pool.
    fn inject(&self, job: JobRef) {
        self.injected
            .lock()
            .expect("inject queue poisoned")
            .push_back(job);
        self.notify();
    }

    /// Finds a runnable job for worker `index`: own deque (back), then the
    /// inject queue, then the other workers' deques (front).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index]
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            return Some(job);
        }
        if let Some(job) = self
            .injected
            .lock()
            .expect("inject queue poisoned")
            .pop_front()
        {
            return Some(job);
        }
        self.steal(index)
    }

    /// Steals the oldest job from some other worker's deque.
    fn steal(&self, index: usize) -> Option<JobRef> {
        let width = self.width;
        for offset in 1..width {
            let victim = (index + offset) % width;
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        // Non-workers inject; check again so a waiter can also drain those.
        self.injected
            .lock()
            .expect("inject queue poisoned")
            .pop_front()
    }

    /// Runs `op` on a thread where work-stealing `join` is available: inline
    /// when already on one of this registry's workers (or when the pool is
    /// width 1), otherwise injected into the pool while the caller blocks.
    pub(crate) fn in_worker<F, R>(self: &Arc<Self>, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.width <= 1 || self.on_worker() {
            return op();
        }
        let job = StackJob::new(LockLatch::new(), op);
        // SAFETY: `job` stays pinned on this stack frame and we block on its
        // latch below before returning; the ref is injected exactly once.
        unsafe {
            self.inject(job.as_job_ref());
            job.latch().wait();
            job.take_result()
        }
    }
}

/// Main loop of a worker thread.
fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    let mut seen_epoch = 0u64;
    loop {
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        if let Some(job) = registry.find_work(index) {
            // SAFETY: every queued JobRef's poster is blocked on its latch,
            // so the pointee is live; each ref is queued (hence run) once.
            unsafe { job.execute() };
            continue;
        }
        // Park until the epoch moves (i.e. something was pushed).
        let mut epoch = registry.sleep_epoch.lock().expect("sleep lock poisoned");
        if *epoch == seen_epoch {
            registry.idle.fetch_add(1, Ordering::Relaxed);
            let (guard, _) = registry
                .sleep_cv
                .wait_timeout(epoch, IDLE_SLEEP)
                .expect("sleep lock poisoned");
            epoch = guard;
            registry.idle.fetch_sub(1, Ordering::Relaxed);
        }
        seen_epoch = *epoch;
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// On a worker thread this is the real work-stealing protocol: `b` is
/// published on the local deque for thieves, `a` runs inline, and the worker
/// then either reclaims `b` (the common, steal-free case — executed inline
/// with zero synchronization beyond the deque lock) or helps execute other
/// jobs until the thief finishes `b`. Off the pool, the whole call is
/// shipped to a worker first. With an effective width of 1 it is exactly
/// `(a(), b())`.
///
/// Panic semantics match rayon: if either closure panics the panic is
/// propagated, but only after both closures have come to rest (so no
/// stolen-job pointer can outlive its stack frame).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((reg, index)) = WORKER.with(|w| w.get()) {
        // SAFETY: we are on a live worker of `reg` (the worker's Arc keeps
        // the registry alive for the duration of this call).
        return unsafe { join_on_worker(&*reg, index, a, b) };
    }
    let registry = POOL_OVERRIDE.with(|s| s.borrow().last().cloned());
    let registry = match registry {
        Some(r) => r,
        None if current_width() <= 1 => return (a(), b()),
        None => Arc::clone(global_registry()),
    };
    if registry.width() <= 1 {
        return (a(), b());
    }
    registry.in_worker(move || join(a, b))
}

/// The worker-side join protocol. See [`join`].
///
/// # Safety
/// Must be called on worker `index` of `registry`.
unsafe fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let b_job = StackJob::new(SpinLatch::new(), b);
    // SAFETY: b_job is pinned on this frame; below we always wait until it
    // has run (inline or by a thief) before the frame can unwind.
    registry.push_local(index, b_job.as_job_ref());

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    if registry.pop_local_if(index, b_job.id()) {
        // Nobody stole it: run inline.
        b_job.as_job_ref().execute();
    } else {
        // Stolen (or about to be): keep useful while the thief works. Only
        // other deques and the inject queue are touched — popping our own
        // deque here could run an *ancestor* join's pending job out of
        // order on this stack.
        let mut spins = 0u32;
        while !b_job.latch().probe() {
            if let Some(job) = registry.steal(index) {
                job.execute();
                spins = 0;
            } else {
                spins += 1;
                if spins < 64 {
                    thread::yield_now();
                } else {
                    thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    let rb = b_job.take_outcome();
    match (ra, rb) {
        (Ok(ra), JobResult::Ok(rb)) => (ra, rb),
        // a's panic takes precedence; b's payload (if any) is dropped.
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, JobResult::Panicked(payload)) => panic::resume_unwind(payload),
        (_, JobResult::Pending) => unreachable!("latch set but join job never ran"),
    }
}

/// Dispatches `op` to a context where [`join`] can actually run in
/// parallel: the current worker, an `install`ed pool, or the global pool.
/// Used by the iterator layer for its top-level drives.
pub(crate) fn in_parallel_context<F, R>(op: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if WORKER.with(|w| w.get()).is_some() {
        return op();
    }
    let registry = POOL_OVERRIDE.with(|s| s.borrow().last().cloned());
    let registry = match registry {
        Some(r) => r,
        None if current_width() <= 1 => return op(),
        None => Arc::clone(global_registry()),
    };
    registry.in_worker(op)
}
