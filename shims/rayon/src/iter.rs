//! The parallel-iterator layer: splittable producers, the recursive
//! split-at-midpoint driver, and the `ParIter` combinator surface.
//!
//! Unlike the old sequential shim (a thin wrapper over `std` iterators),
//! every pipeline here is a tree of [`Producer`]s that can be **split at an
//! index**: sources (slices, ranges, vectors) split structurally, adaptors
//! (`map`, `filter`, `zip`, …) split their base and share their closure via
//! an `Arc`. A terminal operation recursively halves the pipeline down to a
//! leaf size, runs leaves sequentially on whatever worker the runtime's
//! [`crate::join`] lands them on, and combines partial results up the same
//! tree.
//!
//! **Determinism contract.** The split tree depends only on the input
//! length and the caller's [`ParIter::with_min_len`] hint — *never* on the
//! pool width or on which worker stole what. Leaf results are combined in
//! tree (left-to-right) order. Consequences:
//!
//! * ordered combinators (`map`+`collect`, `filter`+`collect`, `enumerate`)
//!   preserve input order exactly, like real rayon;
//! * non-associative reductions (`f64` `sum`/`reduce`) produce **bitwise
//!   identical** results at every pool width and on every run, which is a
//!   *stronger* guarantee than real rayon (whose adaptive splitting varies
//!   with stealing) — the solver pipeline relies on it for 1-vs-N-thread
//!   reproducibility.
//!
//! This module contains no `unsafe`; mutable-slice parallelism is expressed
//! entirely through `split_at_mut`.

use std::cmp::Ordering;
use std::iter::Sum;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

use crate::registry;

/// Target fan-out of the automatic splitter: inputs split into ~64 leaves
/// until the [`MAX_AUTO_LEAF`] cap bites (beyond 64·8192 items the leaf
/// size stays at 8192 and the leaf *count* grows instead, which is the
/// right trade for balance). Fixed — not width-dependent — to keep split
/// trees deterministic; 64 keeps a 16-wide pool busy with stealing slack.
const MAX_LEAVES: usize = 64;

/// Upper bound on the automatically chosen leaf size: above this the
/// driver prefers more leaves (up to [`MAX_LEAVES`]) for better balance.
const MAX_AUTO_LEAF: usize = 8192;

/// The leaf size for an input of `total` items: the caller's `min_len`
/// hint, but never more than [`MAX_LEAVES`] leaves and never leaves larger
/// than [`MAX_AUTO_LEAF`] unless the hint forces them. Depends only on the
/// input shape — see the module docs on determinism.
fn leaf_len(total: usize, min_len: usize) -> usize {
    (total / MAX_LEAVES).min(MAX_AUTO_LEAF).max(min_len).max(1)
}

// ---------------------------------------------------------------------------
// Producer trait and the driver
// ---------------------------------------------------------------------------

/// A splittable, sequentially drainable source of items: the internal
/// representation of every parallel-iterator pipeline stage.
pub trait Producer: Sized + Send {
    /// The item type this pipeline yields.
    type Item: Send;
    /// The sequential iterator a leaf drains.
    type IntoIter: Iterator<Item = Self::Item>;

    /// The number of *base* positions this producer can be split over. For
    /// sources this is the exact item count; adaptors that drop or expand
    /// items (`filter`, `flat_map`) report their base's length — it is a
    /// splitting coordinate, not a size promise.
    fn split_len(&self) -> usize;

    /// Splits into the first `mid` base positions and the rest.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Converts into a sequential iterator over the items.
    fn into_seq(self) -> Self::IntoIter;
}

/// Recursively splits `p` to leaves of at most `leaf`, running `leaf_op` on
/// each leaf and merging with `combine` in tree order.
fn run_tree<P, R, L, C>(p: P, len: usize, leaf: usize, leaf_op: &L, combine: &C) -> R
where
    P: Producer,
    R: Send,
    L: Fn(P) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    if len <= leaf {
        return leaf_op(p);
    }
    let mid = len / 2;
    let (a, b) = p.split_at(mid);
    let (ra, rb) = crate::join(
        || run_tree(a, mid, leaf, leaf_op, combine),
        || run_tree(b, len - mid, leaf, leaf_op, combine),
    );
    combine(ra, rb)
}

/// Top-level drive: computes the (width-independent) leaf size, short-cuts
/// single-leaf inputs inline, and otherwise hops onto a worker thread of
/// the current pool so `join` can schedule the tree.
fn drive<P, R, L, C>(p: P, min_len: usize, leaf_op: L, combine: C) -> R
where
    P: Producer,
    R: Send,
    L: Fn(P) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    let total = p.split_len();
    let leaf = leaf_len(total, min_len);
    if total <= leaf {
        return leaf_op(p);
    }
    registry::in_parallel_context(|| run_tree(p, total, leaf, &leaf_op, &combine))
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing combinator surface
// ---------------------------------------------------------------------------

/// A parallel iterator over a splittable pipeline (rayon's `par_iter`
/// surface). Terminal operations execute on the current pool.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(producer: P) -> Self {
        ParIter {
            producer,
            min_len: 1,
        }
    }

    /// Applies `f` to each item.
    pub fn map<R, F>(self, f: F) -> ParIter<MapProducer<P, F, R>>
    where
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: MapProducer {
                base: self.producer,
                f: Arc::new(f),
                _marker: PhantomData,
            },
            min_len: self.min_len,
        }
    }

    /// Keeps items satisfying `pred`.
    pub fn filter<F>(self, pred: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter {
            producer: FilterProducer {
                base: self.producer,
                f: Arc::new(pred),
            },
            min_len: self.min_len,
        }
    }

    /// Maps and filters in one pass.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<FilterMapProducer<P, F, R>>
    where
        F: Fn(P::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: FilterMapProducer {
                base: self.producer,
                f: Arc::new(f),
                _marker: PhantomData,
            },
            min_len: self.min_len,
        }
    }

    /// Maps each item to an iterable and flattens.
    pub fn flat_map<U, F>(self, f: F) -> ParIter<FlatMapProducer<P, F, U>>
    where
        F: Fn(P::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        ParIter {
            producer: FlatMapProducer {
                base: self.producer,
                f: Arc::new(f),
                _marker: PhantomData,
            },
            min_len: self.min_len,
        }
    }

    /// Maps each item to a *serial* iterable and flattens (rayon's
    /// `flat_map_iter`; the inner iterables are drained sequentially inside
    /// a leaf, only the outer items are split across workers).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<FlatMapProducer<P, F, U>>
    where
        F: Fn(P::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        self.flat_map(f)
    }

    /// Pairs items with their index (indices follow input order).
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
            min_len: self.min_len,
        }
    }

    /// Zips with another parallel iterator, truncating to the shorter.
    pub fn zip<J>(self, other: J) -> ParIter<ZipProducer<P, J::Producer>>
    where
        J: IntoParallelIterator,
    {
        ParIter {
            producer: ZipProducer {
                a: self.producer,
                b: other.into_par_iter().producer,
            },
            min_len: self.min_len,
        }
    }

    /// Runs `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().for_each(&f),
            |(), ()| (),
        )
    }

    /// Sums the items (fixed reduction tree; see module docs).
    pub fn sum<S>(self) -> S
    where
        S: Send + Sum<P::Item> + Sum<S>,
    {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().sum::<S>(),
            |a, b| [a, b].into_iter().sum(),
        )
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().count(),
            |a, b| a + b,
        )
    }

    /// Collects into a preallocated `Vec`, preserving input order — rayon's
    /// collect-into-preallocated for exact-length indexed pipelines.
    ///
    /// When `target.len()` already equals the pipeline's length, the items
    /// are written in place through a zipped parallel write: no per-leaf
    /// buffers, no reallocation — the steady-state of a buffer reused
    /// across applies is allocation-free. Otherwise the vector is replaced
    /// by an ordinary ordered [`collect`](Self::collect) (upstream rayon
    /// grows into spare capacity with `unsafe`; this shim stays safe by
    /// requiring the caller to have sized the buffer once).
    ///
    /// Only meaningful for exact-length (indexed) pipelines — sources and
    /// item-preserving adaptors like `map`/`zip`/`enumerate`. Pipelines
    /// that drop or expand items (`filter`, `flat_map`) report their base
    /// length and would be silently truncated; don't use this with them.
    pub fn collect_into_vec(self, target: &mut Vec<P::Item>) {
        let n = self.producer.split_len();
        if target.len() == n {
            let min_len = self.min_len;
            target
                .as_mut_slice()
                .into_par_iter()
                .zip(self)
                .with_min_len(min_len)
                .for_each(|(slot, item)| *slot = item);
        } else {
            *target = self.collect();
        }
    }

    /// Collects into any `FromIterator` container, preserving input order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().collect::<Vec<_>>(),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        parts.into_iter().collect()
    }

    /// Rayon-style reduce with an identity constructor.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().fold(identity(), &op),
            &op,
        )
    }

    /// Rayon-style reduce without an identity; `None` on empty input.
    pub fn reduce_with<OP>(self, op: OP) -> Option<P::Item>
    where
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().reduce(&op),
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(op(a, b)),
                (x, None) | (None, x) => x,
            },
        )
    }

    /// Minimum item, if any (first of equals, like `Iterator::min`).
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.min_by(P::Item::cmp)
    }

    /// Maximum item, if any (last of equals, like `Iterator::max`).
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.max_by(P::Item::cmp)
    }

    /// Minimum by a comparator.
    pub fn min_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> Ordering + Send + Sync,
    {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().min_by(&f),
            |a, b| match (a, b) {
                (Some(a), Some(b)) => {
                    if f(&b, &a) == Ordering::Less {
                        Some(b)
                    } else {
                        Some(a)
                    }
                }
                (x, None) | (None, x) => x,
            },
        )
    }

    /// Maximum by a comparator.
    pub fn max_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> Ordering + Send + Sync,
    {
        drive(
            self.producer,
            self.min_len,
            |p| p.into_seq().max_by(&f),
            |a, b| match (a, b) {
                (Some(a), Some(b)) => {
                    if f(&b, &a) == Ordering::Less {
                        Some(a)
                    } else {
                        Some(b)
                    }
                }
                (x, None) | (None, x) => x,
            },
        )
    }

    /// Tests whether all items satisfy `pred`. Leaves started after a
    /// counterexample is found are skipped.
    pub fn all<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        let failed = AtomicBool::new(false);
        drive(
            self.producer,
            self.min_len,
            |p| {
                if failed.load(AtomicOrdering::Relaxed) {
                    return true; // moot: some other leaf already failed
                }
                let ok = p.into_seq().all(&pred);
                if !ok {
                    failed.store(true, AtomicOrdering::Relaxed);
                }
                ok
            },
            |a, b| a && b,
        )
    }

    /// Tests whether any item satisfies `pred`. Leaves started after a
    /// witness is found are skipped.
    pub fn any<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        let found = AtomicBool::new(false);
        drive(
            self.producer,
            self.min_len,
            |p| {
                if found.load(AtomicOrdering::Relaxed) {
                    return false; // moot: some other leaf already matched
                }
                let hit = p.into_seq().any(&pred);
                if hit {
                    found.store(true, AtomicOrdering::Relaxed);
                }
                hit
            },
            |a, b| a || b,
        )
    }

    /// Lower-bounds the number of items a leaf task processes (rayon's
    /// tuning knob; raises the sequential cutoff for cheap per-item work).
    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_len = self.min_len.max(len.max(1));
        self
    }

    /// Accepted for API compatibility; the driver's fixed fan-out already
    /// bounds task counts, so this is a no-op.
    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }
}

impl<'a, T, P> ParIter<P>
where
    T: 'a + Copy + Send + Sync,
    P: Producer<Item = &'a T>,
{
    /// Copies out of references.
    pub fn copied(self) -> ParIter<CopiedProducer<P>> {
        ParIter {
            producer: CopiedProducer(self.producer),
            min_len: self.min_len,
        }
    }
}

impl<'a, T, P> ParIter<P>
where
    T: 'a + Clone + Send + Sync,
    P: Producer<Item = &'a T>,
{
    /// Clones out of references.
    pub fn cloned(self) -> ParIter<ClonedProducer<P>> {
        ParIter {
            producer: ClonedProducer(self.producer),
            min_len: self.min_len,
        }
    }
}

// ---------------------------------------------------------------------------
// Source producers
// ---------------------------------------------------------------------------

/// Producer over `&[T]` (from `par_iter`).
pub struct SliceProducer<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn split_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (SliceProducer(a), SliceProducer(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Producer over `&mut [T]` (from `par_iter_mut`).
pub struct SliceMutProducer<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn split_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(mid);
        (SliceMutProducer(a), SliceMutProducer(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

/// Producer over non-overlapping chunks of a slice (from `par_chunks`).
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn split_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(cut);
        (
            ChunksProducer {
                slice: a,
                size: self.size,
            },
            ChunksProducer {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Producer over non-overlapping mutable chunks (from `par_chunks_mut`).
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn split_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(cut);
        (
            ChunksMutProducer {
                slice: a,
                size: self.size,
            },
            ChunksMutProducer {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Producer over overlapping windows of a slice (from `par_windows`).
pub struct WindowsProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for WindowsProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;
    fn split_len(&self) -> usize {
        (self.slice.len() + 1).saturating_sub(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        // Window i starts at i; the left half keeps windows [0, mid), which
        // need elements [0, mid + size - 1); halves overlap by design.
        let left_end = (mid + self.size - 1).min(self.slice.len());
        (
            WindowsProducer {
                slice: &self.slice[..left_end],
                size: self.size,
            },
            WindowsProducer {
                slice: &self.slice[mid..],
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.windows(self.size)
    }
}

/// Producer over an integer range (from `(a..b).into_par_iter()`).
pub struct RangeProducer<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;
            fn split_len(&self) -> usize {
                if self.range.start >= self.range.end {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let cut = self.range.start + mid as $t;
                (
                    RangeProducer { range: self.range.start..cut },
                    RangeProducer { range: cut..self.range.end },
                )
            }
            fn into_seq(self) -> Self::IntoIter {
                self.range
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = RangeProducer<$t>;
            fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                ParIter::new(RangeProducer { range: self })
            }
        }
    )*};
}

range_producer!(usize, u32, u64, i32, i64);

/// Producer that owns a `Vec` (from `vec.into_par_iter()`).
pub struct VecProducer<T>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn split_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.0.split_off(mid);
        (self, VecProducer(tail))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

// ---------------------------------------------------------------------------
// Adaptor producers and their sequential iterators
// ---------------------------------------------------------------------------

/// `map` adaptor: shares the closure across splits via `Arc`.
pub struct MapProducer<P, F, R> {
    base: P,
    f: Arc<F>,
    _marker: PhantomData<fn() -> R>,
}

impl<P, F, R> Producer for MapProducer<P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type IntoIter = MapSeqIter<P::IntoIter, F, R>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            MapProducer {
                base: a,
                f: Arc::clone(&self.f),
                _marker: PhantomData,
            },
            MapProducer {
                base: b,
                f: self.f,
                _marker: PhantomData,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        MapSeqIter {
            base: self.base.into_seq(),
            f: self.f,
            _marker: PhantomData,
        }
    }
}

/// Sequential side of [`MapProducer`].
pub struct MapSeqIter<I, F, R> {
    base: I,
    f: Arc<F>,
    _marker: PhantomData<fn() -> R>,
}

impl<I, F, R> Iterator for MapSeqIter<I, F, R>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// `filter` adaptor.
pub struct FilterProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type IntoIter = FilterSeqIter<P::IntoIter, F>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            FilterProducer {
                base: a,
                f: Arc::clone(&self.f),
            },
            FilterProducer { base: b, f: self.f },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        FilterSeqIter {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential side of [`FilterProducer`].
pub struct FilterSeqIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F> Iterator for FilterSeqIter<I, F>
where
    I: Iterator,
    F: Fn(&I::Item) -> bool,
{
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.base.find(|x| (self.f)(x))
    }
}

/// `filter_map` adaptor.
pub struct FilterMapProducer<P, F, R> {
    base: P,
    f: Arc<F>,
    _marker: PhantomData<fn() -> R>,
}

impl<P, F, R> Producer for FilterMapProducer<P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;
    type IntoIter = FilterMapSeqIter<P::IntoIter, F, R>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            FilterMapProducer {
                base: a,
                f: Arc::clone(&self.f),
                _marker: PhantomData,
            },
            FilterMapProducer {
                base: b,
                f: self.f,
                _marker: PhantomData,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        FilterMapSeqIter {
            base: self.base.into_seq(),
            f: self.f,
            _marker: PhantomData,
        }
    }
}

/// Sequential side of [`FilterMapProducer`].
pub struct FilterMapSeqIter<I, F, R> {
    base: I,
    f: Arc<F>,
    _marker: PhantomData<fn() -> R>,
}

impl<I, F, R> Iterator for FilterMapSeqIter<I, F, R>
where
    I: Iterator,
    F: Fn(I::Item) -> Option<R>,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        loop {
            let x = self.base.next()?;
            if let Some(r) = (self.f)(x) {
                return Some(r);
            }
        }
    }
}

/// `flat_map` / `flat_map_iter` adaptor: splits over the *outer* items.
pub struct FlatMapProducer<P, F, U> {
    base: P,
    f: Arc<F>,
    _marker: PhantomData<fn() -> U>,
}

impl<P, F, U> Producer for FlatMapProducer<P, F, U>
where
    P: Producer,
    F: Fn(P::Item) -> U + Send + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;
    type IntoIter = FlatMapSeqIter<P::IntoIter, F, U>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            FlatMapProducer {
                base: a,
                f: Arc::clone(&self.f),
                _marker: PhantomData,
            },
            FlatMapProducer {
                base: b,
                f: self.f,
                _marker: PhantomData,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        FlatMapSeqIter {
            base: self.base.into_seq(),
            f: self.f,
            front: None,
        }
    }
}

/// Sequential side of [`FlatMapProducer`].
pub struct FlatMapSeqIter<I, F, U: IntoIterator> {
    base: I,
    f: Arc<F>,
    front: Option<U::IntoIter>,
}

impl<I, F, U> Iterator for FlatMapSeqIter<I, F, U>
where
    I: Iterator,
    F: Fn(I::Item) -> U,
    U: IntoIterator,
{
    type Item = U::Item;
    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(inner) = &mut self.front {
                if let Some(x) = inner.next() {
                    return Some(x);
                }
            }
            let outer = self.base.next()?;
            self.front = Some((self.f)(outer).into_iter());
        }
    }
}

/// `enumerate` adaptor: tracks the base offset across splits so indices
/// follow input order. Meaningful on exact-length pipelines (sources and
/// item-preserving adaptors), matching rayon's `IndexedParallelIterator`.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateSeqIter<P::IntoIter>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            EnumerateProducer {
                base: a,
                offset: self.offset,
            },
            EnumerateProducer {
                base: b,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        EnumerateSeqIter {
            base: self.base.into_seq(),
            index: self.offset,
        }
    }
}

/// Sequential side of [`EnumerateProducer`].
pub struct EnumerateSeqIter<I> {
    base: I,
    index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<(usize, I::Item)> {
        let x = self.base.next()?;
        let i = self.index;
        self.index += 1;
        Some((i, x))
    }
}

/// `zip` adaptor: splits both sides at the same index.
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn split_len(&self) -> usize {
        self.a.split_len().min(self.b.split_len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (ZipProducer { a: a1, b: b1 }, ZipProducer { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// `copied` adaptor.
pub struct CopiedProducer<P>(P);

impl<'a, T, P> Producer for CopiedProducer<P>
where
    T: 'a + Copy + Send + Sync,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Copied<P::IntoIter>;
    fn split_len(&self) -> usize {
        self.0.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (CopiedProducer(a), CopiedProducer(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.into_seq().copied()
    }
}

/// `cloned` adaptor.
pub struct ClonedProducer<P>(P);

impl<'a, T, P> Producer for ClonedProducer<P>
where
    T: 'a + Clone + Send + Sync,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Cloned<P::IntoIter>;
    fn split_len(&self) -> usize {
        self.0.split_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (ClonedProducer(a), ClonedProducer(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.into_seq().cloned()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Conversion into a [`ParIter`]. Implemented for integer ranges, vectors,
/// slices, and `ParIter` itself (so `zip` accepts either).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Pipeline type backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter::new(VecProducer(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceProducer<'a, T>> {
        ParIter::new(SliceProducer(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceProducer<'a, T>> {
        ParIter::new(SliceProducer(self))
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceMutProducer<'a, T>> {
        ParIter::new(SliceMutProducer(self))
    }
}

/// Shared-slice parallel entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over chunks of up to `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>>;
    /// Parallel iterator over overlapping windows of `size` items.
    fn par_windows(&self, size: usize) -> ParIter<WindowsProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter::new(SliceProducer(self))
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter::new(ChunksProducer { slice: self, size })
    }
    fn par_windows(&self, size: usize) -> ParIter<WindowsProducer<'_, T>> {
        assert!(size != 0, "window size must be non-zero");
        ParIter::new(WindowsProducer { slice: self, size })
    }
}

/// Mutable-slice parallel entry points (`par_iter_mut`, sorts).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    /// Parallel iterator over mutable chunks of up to `size` items.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    /// Unstable sort (parallel merge sort above the cutoff).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort with a comparator.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Stable sort with a comparator.
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter::new(SliceMutProducer(self))
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter::new(ChunksMutProducer { slice: self, size })
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_sort_by(self, false, &T::cmp);
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        crate::sort::par_sort_by(self, false, &cmp);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        crate::sort::par_sort_by(self, false, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_sort_by(self, true, &T::cmp);
    }
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        crate::sort::par_sort_by(self, true, &cmp);
    }
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        crate::sort::par_sort_by(self, true, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }
}
