//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement API surface the experiment benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and [`black_box`] —
//! with a deliberately simple measurement loop: per benchmark it runs one
//! warm-up batch, then `sample_size` timed batches, and prints
//! median/min/max wall-clock times per iteration to stdout. There is no
//! statistical analysis, HTML report, or saved baseline; the point is that
//! `cargo bench` compiles and produces honest first-order numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendering.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<&String> for BenchmarkId {
    fn from(name: &String) -> Self {
        Self {
            name: name.clone(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name,
            parameter: None,
        }
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    /// Number of timed samples to record.
    samples: usize,
    /// Recorded per-iteration durations.
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording `samples` measurements of one call each
    /// (after a single warm-up call whose result is black-boxed).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// No-op compatibility knob.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &mut bencher.recorded);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id, &mut bencher.recorded);
        self
    }

    fn report(&mut self, id: &BenchmarkId, recorded: &mut [Duration]) {
        if recorded.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.render());
            return;
        }
        recorded.sort_unstable();
        let median = recorded[recorded.len() / 2];
        let min = recorded[0];
        let max = recorded[recorded.len() - 1];
        println!(
            "{}/{}: median {} (min {}, max {}, {} samples)",
            self.name,
            id.render(),
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            recorded.len()
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Finishes the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Compatibility no-op (the real crate parses CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_string(),
            sample_size: 10,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs_and_counts() {
        benches();
        let mut c = Criterion::default();
        trivial(&mut c);
        assert_eq!(c.benchmarks_run, 2);
    }
}
