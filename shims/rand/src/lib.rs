//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no crates.io access, so this shim supplies the
//! trait surface the `parsdd` crates use — [`RngCore`], [`Rng`],
//! [`SeedableRng`], and the slice helpers in [`seq`] — with the same method
//! signatures as rand 0.8. Generators themselves live in the sibling
//! `rand_chacha` shim. Distribution quality: integer ranges use the
//! widening-multiply method, floats use the standard 53-bit mantissa
//! construction; `seed_from_u64` expands the seed with SplitMix64 exactly
//! like rand's `SeedableRng` default, so streams are stable across runs.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: raw words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Samples a uniform index in `0..n` (n > 0) without noticeable bias,
/// via the 64x64→128 widening-multiply method.
fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_index(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_index(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, matching rand 0.8's trait shape.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion rand uses, so seeds are portable).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{uniform_index, RngCore};

    /// Random helpers on slices: shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Chooses `amount` distinct elements (all of them if
        /// `amount >= len`), returned in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index permutation.
            let n = self.len();
            let amount = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..amount {
                let j = i + uniform_index(rng, (n - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

/// The usual `use rand::prelude::*` import surface.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// SplitMix64 test generator.
    struct Sm64(u64);

    impl super::RngCore for Sm64 {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Sm64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let w = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = Sm64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Sm64(1);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = Sm64(3);
        let xs: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }
}
