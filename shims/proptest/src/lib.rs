//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this repository's property tests: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! range and tuple strategies, [`Strategy::prop_map`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test, per-case RNG; there is **no shrinking** — a failing case
//! reports its case number and seed instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (`cases` is the number of generated inputs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for (`test_name`, `case`), stable across runs.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.index(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.index(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0u32..100, y in 0.0f64..1.0) {
///         prop_assert!(x < 100, "x was {}", x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng =
                        $crate::TestRng::deterministic(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng); )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The usual `use proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn sum_strategy() -> impl Strategy<Value = (u32, u32)> {
        (0u32..1000, 0u32..1000).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(pair in sum_strategy(), z in 0u64..10) {
            let (a, b) = pair;
            prop_assert_eq!(a + b, b + a);
            prop_assert!(z < 10, "z out of range: {}", z);
        }

        #[test]
        fn floats_in_range(x in -2.0f64..2.0, y in 1f64..=4.0) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1.0..=4.0).contains(&y));
            if x > 100.0 {
                return Ok(());
            }
            prop_assert_ne!(y, 0.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::TestRng::deterministic("t", 3);
        let mut b = super::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
