//! Root reproduction package for *Near Linear-Work Parallel SDD Solvers,
//! Low-Diameter Decomposition, and Low-Stretch Subgraphs* (SPAA 2011).
//!
//! This crate only hosts the repository-level examples and integration
//! tests; the actual library lives in the [`parsdd`] facade crate and the
//! per-subsystem crates it re-exports. See `README.md` and `DESIGN.md`.

pub use parsdd::*;
