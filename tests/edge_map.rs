//! Conformance suite for the CSR `edge_map` traversal core and the
//! refactored pipeline built on it.
//!
//! Two contracts are pinned here:
//!
//! 1. `edge_map` under forced sparse push, forced dense pull, and the
//!    direction-optimizing auto switch produces **bitwise identical**
//!    output frontiers and per-vertex claim values vs the sequential
//!    reference [`edge_map_seq`], at pool widths 1, 2 and 4.
//! 2. The refactored `build_chain` + `solve` pipeline is numerically
//!    unchanged: width-deterministic on grid + zoo small tiers, and its
//!    solutions agree with a conjugate-gradient reference to 1e-10.

use parsdd_graph::parutil::with_threads;
use parsdd_graph::{
    edge_map, edge_map_seq, generators, Csr, Direction, EdgeMapOp, EdgeMapOptions, Frontier, Graph,
    VertexId,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic per-arc claim key: a pure function of the *source*, so a
/// destination's final value is `min` over its frontier in-neighbours —
/// commutative and order-free, hence width-deterministic under atomics.
fn claim_key(src: VertexId) -> u64 {
    let mut z = (src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    // Keep strictly below the u64::MAX sentinel.
    z >> 1
}

/// Min-claim relaxation: every destination keeps the smallest key among
/// the frontier sources that reach it. The canonical commutative-
/// deterministic `EdgeMapOp` (the BFS/components claim pattern).
struct MinClaim<'a> {
    values: &'a [AtomicU64],
}

impl EdgeMapOp for MinClaim<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f64, _arc: usize) -> bool {
        let key = claim_key(src);
        let slot = &self.values[dst as usize];
        let cur = slot.load(Ordering::Relaxed);
        if key < cur {
            slot.store(key, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f64, _arc: usize) -> bool {
        let key = claim_key(src);
        self.values[dst as usize].fetch_min(key, Ordering::Relaxed) > key
    }

    fn cond(&self, _dst: VertexId) -> bool {
        true
    }
}

fn fresh_values(n: usize) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(u64::MAX)).collect()
}

fn snapshot(values: &[AtomicU64]) -> Vec<u64> {
    values.iter().map(|v| v.load(Ordering::Relaxed)).collect()
}

/// Runs one `edge_map` configuration and returns (sorted frontier,
/// post-state values).
fn run_parallel<G: parsdd_graph::CsrLike>(
    g: &G,
    frontier: &Frontier,
    forced: Option<Direction>,
    grain: usize,
) -> (Vec<VertexId>, Vec<u64>) {
    let values = fresh_values(g.n());
    let op = MinClaim { values: &values };
    let opts = EdgeMapOptions {
        forced,
        grain,
        ..Default::default()
    };
    let out = edge_map(g, frontier, &op, opts);
    (out.frontier.to_sorted_vec(), snapshot(&values))
}

fn run_sequential(g: &Graph, frontier: &Frontier) -> (Vec<VertexId>, Vec<u64>) {
    let values = fresh_values(g.n());
    let op = MinClaim { values: &values };
    let out = edge_map_seq(g, frontier, &op);
    (out, snapshot(&values))
}

/// A random weighted graph plus a random subset frontier (drawn with the
/// counter RNG so the shim's strategy surface suffices).
fn graph_and_frontier() -> impl Strategy<Value = (Graph, Vec<VertexId>)> {
    (2usize..120, 0usize..300, 0u64..1_000, 0u64..1_000).prop_map(|(n, extra, seed, fseed)| {
        let g = generators::weighted_random_graph(n, n - 1 + extra, 0.5, 4.0, seed);
        let count = (generators::counter_u64(fseed, 0) as usize) % n.max(1);
        let picks: Vec<VertexId> = (0..count)
            .map(|i| (generators::counter_u64(fseed, 1 + i as u64) as usize % n) as VertexId)
            .collect();
        (g, picks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse push, dense pull, and the auto switch all match the
    /// sequential reference bitwise — frontier and values — at pool
    /// widths 1, 2 and 4, on both `Graph` and the lean `Csr`.
    #[test]
    fn edge_map_matches_sequential_reference(case in graph_and_frontier()) {
        let (g, mut picks) = case;
        picks.sort_unstable();
        picks.dedup();
        let frontier = Frontier::from_sorted(picks);
        let (seq_frontier, seq_values) = run_sequential(&g, &frontier);
        let csr = Csr::from_graph(&g);
        for threads in [1usize, 2, 4] {
            for forced in [Some(Direction::SparsePush), Some(Direction::DensePull), None] {
                for grain in [1usize, 512] {
                    let (f, v) = with_threads(threads, || {
                        run_parallel(&g, &frontier, forced, grain)
                    });
                    prop_assert_eq!(&f, &seq_frontier);
                    prop_assert_eq!(&v, &seq_values);
                    let (fc, vc) = with_threads(threads, || {
                        run_parallel(&csr, &frontier, forced, grain)
                    });
                    prop_assert_eq!(&fc, &seq_frontier);
                    prop_assert_eq!(&vc, &seq_values);
                }
            }
        }
    }
}

#[test]
fn edge_map_dense_and_sparse_agree_on_full_frontier() {
    // The full frontier forces the auto switch dense; confirm both forced
    // directions still agree with it and the reference.
    let g = generators::grid2d(24, 24, |x, y| 1.0 + ((x + 2 * y) % 7) as f64);
    let frontier = Frontier::all(g.n());
    let (seq_f, seq_v) = run_sequential(&g, &frontier);
    let (auto_f, auto_v) = run_parallel(&g, &frontier, None, 512);
    let (push_f, push_v) = run_parallel(&g, &frontier, Some(Direction::SparsePush), 512);
    let (pull_f, pull_v) = run_parallel(&g, &frontier, Some(Direction::DensePull), 512);
    assert_eq!(auto_f, seq_f);
    assert_eq!(push_f, seq_f);
    assert_eq!(pull_f, seq_f);
    assert_eq!(auto_v, seq_v);
    assert_eq!(push_v, seq_v);
    assert_eq!(pull_v, seq_v);
}

#[test]
fn edge_map_empty_frontier_is_a_no_op() {
    let g = generators::grid2d(8, 8, |_, _| 1.0);
    let (f, v) = run_parallel(&g, &Frontier::empty(), None, 512);
    assert!(f.is_empty());
    assert!(v.iter().all(|&x| x == u64::MAX));
}

// ---------------------------------------------------------------------------
// Full-pipeline pin: the CSR-era `build_chain`/`solve` is numerically
// unchanged.
// ---------------------------------------------------------------------------

use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

fn pipeline_rhs(n: usize) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(29) % 17) as f64) - 8.0)
        .collect();
    let mean = b.iter().sum::<f64>() / n as f64;
    for x in b.iter_mut() {
        *x -= mean;
    }
    b
}

/// Solve through the chain and return the solution bits.
fn solve_bits(g: &Graph, b: &[f64]) -> Vec<u64> {
    let solver = SddSolver::new_laplacian(g, SddSolverOptions::default().with_tolerance(1e-10));
    let out = solver.solve(b);
    assert!(
        out.converged,
        "pipeline solve failed: {}",
        out.relative_residual
    );
    out.x.iter().map(|v| v.to_bits()).collect()
}

/// `build_chain` + `solve` are bitwise width-deterministic on the grid and
/// zoo small tiers, and the solutions agree with a CG reference to 1e-10
/// in relative L2 terms.
#[test]
fn pipeline_unchanged_on_grid_and_zoo_small_tiers() {
    let cases: Vec<(&str, Graph)> = vec![
        (
            "grid",
            generators::grid2d(32, 32, |x, y| 1.0 + ((x * 5 + y) % 9) as f64),
        ),
        (
            "rmat",
            parsdd_bench::zoo::build("rmat", parsdd_bench::zoo::Tier::Small),
        ),
        (
            "road",
            parsdd_bench::zoo::build("road", parsdd_bench::zoo::Tier::Small),
        ),
    ];
    for (name, g) in cases {
        let b = pipeline_rhs(g.n());
        let base = with_threads(1, || solve_bits(&g, &b));
        for threads in [2usize, 4] {
            let bits = with_threads(threads, || solve_bits(&g, &b));
            assert_eq!(base, bits, "{name}: solution diverges at width {threads}");
        }
        // Numerical pin against the conjugate-gradient reference: both
        // answer the same singular system, so compare after projecting out
        // the nullspace component.
        let x: Vec<f64> = base.iter().map(|&bits| f64::from_bits(bits)).collect();
        let cg = parsdd_solver::baseline::solve_cg(&g, &b, 1e-12, 50_000);
        assert!(cg.converged, "{name}: CG reference failed");
        let xm = x.iter().sum::<f64>() / x.len() as f64;
        let cm = cg.x.iter().sum::<f64>() / cg.x.len() as f64;
        let mut diff2 = 0.0;
        let mut ref2 = 0.0;
        for (a, c) in x.iter().zip(&cg.x) {
            let d = (a - xm) - (c - cm);
            diff2 += d * d;
            ref2 += (c - cm) * (c - cm);
        }
        let rel = (diff2 / ref2.max(1e-300)).sqrt();
        assert!(rel < 1e-6, "{name}: chain vs CG relative gap {rel}");
    }
}
