//! Fast end-to-end smoke test: the full paper pipeline — low-diameter
//! decomposition (§4), AKPW tree and low-stretch subgraph (§5), the SDD
//! solver (§6), and a residual check — on a small 2-D grid. This is the
//! regression canary for the build surface: it must stay cheap enough
//! (well under a second) that every CI run and local `cargo test` exercises
//! the whole crate stack even when the heavier integration tests are
//! filtered out.

use parsdd::prelude::*;
use parsdd_linalg::laplacian::LaplacianOp;
use parsdd_linalg::operator::LinearOperator;
use parsdd_linalg::vector::{norm2, project_out_constant};

#[test]
fn grid2d_pipeline_end_to_end_small() {
    // Section 2: the classic SDD benchmark graph, small enough to be fast.
    let g = parsdd::graph::generators::grid2d(12, 12, |_, _| 1.0);
    assert_eq!(g.n(), 144);

    // Section 4: low-diameter decomposition partitions every vertex and
    // produces a spanning forest of the components.
    let split = split_graph(&g, &SplitParams::new(6).with_seed(1));
    assert!(split.component_count >= 1);
    assert_eq!(split.labels.len(), g.n());
    assert_eq!(split.tree_edges().len(), g.n() - split.component_count);

    // Section 5: AKPW spans the (connected) grid; the subgraph keeps at
    // least the tree and at most all edges.
    let tree = akpw(&g, &AkpwParams::practical(16.0).with_seed(2));
    assert_eq!(tree.tree_edges.len(), g.n() - 1);
    let sub = ls_subgraph(&g, &LsSubgraphParams::practical(16.0, 2).with_seed(3));
    let sub_edges = sub.all_edges();
    assert!(sub_edges.len() >= g.n() - 1);
    assert!(sub_edges.len() <= g.m());

    // Section 6 / Theorem 1.1: the solver drives the relative residual
    // below tolerance on a balanced right-hand side.
    let mut b: Vec<f64> = (0..g.n()).map(|i| ((i % 7) as f64) - 3.0).collect();
    project_out_constant(&mut b);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
    let out = solver.solve(&b);
    assert!(out.converged, "relative residual {}", out.relative_residual);
    let op = LaplacianOp::new(&g);
    assert!(norm2(&op.residual(&out.x, &b)) <= 1e-4 * norm2(&b));
}
