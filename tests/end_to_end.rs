//! Cross-crate integration tests: the full pipeline of the paper, from
//! low-diameter decomposition through low-stretch subgraphs to the solver
//! and its applications, exercised together on shared workloads.

use parsdd::prelude::*;
use parsdd_decomp::partition::partition_single_class;
use parsdd_decomp::stats::decomposition_stats;
use parsdd_linalg::laplacian::LaplacianOp;
use parsdd_linalg::operator::LinearOperator;
use parsdd_linalg::vector::{norm2, project_out_constant};
use parsdd_lsst::stretch::{stretch_over_subgraph_sampled, stretch_over_tree};
use parsdd_solver::baseline;

fn balanced_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed.wrapping_add(13)) % 101) as f64) - 50.0)
        .collect();
    project_out_constant(&mut b);
    b
}

#[test]
fn decomposition_feeds_akpw_feeds_solver_on_weighted_grid() {
    // One workload flowing through all three layers of the paper.
    let base = parsdd::graph::generators::grid2d(40, 40, |_, _| 1.0);
    let graph = parsdd::graph::generators::with_power_law_weights(&base, 4, 99);

    // Section 4: decomposition quality.
    let part = partition_single_class(&graph, &PartitionParams::new(24).with_seed(1));
    let stats = decomposition_stats(&graph, &part.split, false);
    assert!(stats.max_radius <= 24, "radius {} > rho", stats.max_radius);
    assert!(stats.cut_fraction < 1.0);

    // Section 5: AKPW tree and LSSubgraph built on the same graph.
    let tree = akpw(&graph, &AkpwParams::practical(32.0).with_seed(1));
    assert_eq!(tree.tree_edges.len(), graph.n() - 1);
    let tree_report = stretch_over_tree(&graph, &tree.tree_edges);
    assert!(tree_report.total_stretch.is_finite());

    let sub = ls_subgraph(&graph, &LsSubgraphParams::practical(32.0, 2).with_seed(1));
    let sub_edges = sub.all_edges();
    assert!(sub_edges.len() >= graph.n() - 1);
    assert!(sub_edges.len() <= graph.m());

    // Section 6: the solver built from those ingredients answers a system.
    let solver = SddSolver::new_laplacian(&graph, SddSolverOptions::default());
    let b = balanced_rhs(graph.n(), 7);
    let out = solver.solve(&b);
    assert!(
        out.converged,
        "solver failed: rel {}",
        out.relative_residual
    );
    let op = LaplacianOp::new(&graph);
    assert!(norm2(&op.residual(&out.x, &b)) <= 1e-6 * norm2(&b));
}

#[test]
fn solver_agrees_with_cg_baseline() {
    let graph = parsdd::graph::generators::weighted_random_graph(600, 2400, 1.0, 8.0, 5);
    let b = balanced_rhs(graph.n(), 3);

    let solver =
        SddSolver::new_laplacian(&graph, SddSolverOptions::default().with_tolerance(1e-10));
    let chain_out = solver.solve(&b);
    let cg_out = baseline::solve_cg(&graph, &b, 1e-10, 20_000);
    assert!(chain_out.converged && cg_out.converged);

    // Both are solutions of the same singular system: they agree up to a
    // constant shift per component (here the graph is connected).
    let mut x1 = chain_out.x.clone();
    let mut x2 = cg_out.x.clone();
    project_out_constant(&mut x1);
    project_out_constant(&mut x2);
    let diff: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a - b).collect();
    assert!(
        norm2(&diff) <= 1e-5 * norm2(&x2).max(1.0),
        "solutions differ by {}",
        norm2(&diff)
    );
}

#[test]
fn low_stretch_subgraph_beats_mst_as_preconditioner_substrate() {
    // The reason the paper builds low-stretch subgraphs: their total
    // stretch (which controls the sparsifier's sample count, Lemma 6.1) is
    // much lower than a generic spanning structure on stretched graphs.
    let base = parsdd::graph::generators::grid2d(36, 36, |_, _| 1.0);
    let graph = parsdd::graph::generators::with_power_law_weights(&base, 6, 21);

    let mst = parsdd::graph::mst::kruskal(&graph);
    let mst_report = stretch_over_tree(&graph, &mst);

    let sub = ls_subgraph(&graph, &LsSubgraphParams::practical(16.0, 2).with_seed(5));
    let sub_edges = sub.all_edges();
    let sub_report = stretch_over_subgraph_sampled(&graph, &sub_edges, 500, 9);

    // The subgraph has a few more edges than the tree but its average
    // stretch should not exceed the MST's (usually it is far lower).
    assert!(
        sub_report.average_stretch <= mst_report.average_stretch * 1.2 + 1.0,
        "subgraph avg stretch {} vs MST {}",
        sub_report.average_stretch,
        mst_report.average_stretch
    );
}

#[test]
fn sdd_system_via_gremban_end_to_end() {
    use parsdd_linalg::vector::sub;
    // An SDD matrix assembled from a graph Laplacian + diagonal + positive
    // couplings, solved through the Gremban reduction.
    let g = parsdd::graph::generators::grid2d(12, 12, |_, _| 1.0);
    let lap = parsdd::linalg::laplacian::laplacian_of(&g);
    let n = g.n();
    let mut trips: Vec<(u32, u32, f64)> = Vec::new();
    for r in 0..n {
        for (c, v) in lap.row(r) {
            trips.push((r as u32, c, v));
        }
    }
    for i in 0..n as u32 {
        trips.push((i, i, 1.0));
    }
    trips.push((3, 77, 0.4));
    trips.push((77, 3, 0.4));
    trips.push((3, 3, 0.4));
    trips.push((77, 77, 0.4));
    let a = CsrMatrix::from_triplets(n, n, &trips);

    let solver = SddSolver::new_sdd(&a, SddSolverOptions::default().with_tolerance(1e-10));
    let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
    let out = solver.solve(&b);
    let r = sub(&b, &a.apply_vec(&out.x));
    assert!(norm2(&r) <= 1e-5 * norm2(&b), "residual {}", norm2(&r));
}

#[test]
fn applications_share_one_solver_instance() {
    use parsdd_apps::electrical::electrical_flow;
    use parsdd_apps::resistance::pair_effective_resistance;
    use parsdd_apps::spectral::fiedler_vector;

    let graph = parsdd::graph::generators::grid2d(15, 15, |_, _| 1.0);
    let solver = SddSolver::new_laplacian(&graph, SddSolverOptions::default().with_tolerance(1e-9));

    let flow = electrical_flow(&graph, &solver, 0, (graph.n() - 1) as u32);
    assert!(flow.converged);
    let reff = pair_effective_resistance(&graph, &solver, 0, (graph.n() - 1) as u32);
    assert!((reff - flow.effective_resistance).abs() < 1e-8);

    let fiedler = fiedler_vector(&graph, &solver, 30, 3);
    assert!(fiedler.lambda2 > 0.0);
    // λ₂ of an n x n grid is small (≈ 2(1−cos(π/15)) ≈ 0.044).
    assert!(fiedler.lambda2 < 0.2, "lambda2 {}", fiedler.lambda2);
}
