//! Adversarial-input property tests over the solver facade: non-finite
//! weights and right-hand sides, mismatched dimensions, empty graphs,
//! isolated vertices, and kernel-violating right-hand sides. Every case
//! must produce a typed classification — never a panic — and the
//! classification must be identical inside rayon pools of width 1 and 4
//! (the determinism contract extends to the error path).

use proptest::prelude::*;

use parsdd_graph::{generators, Edge, Graph, GraphDataError};
use parsdd_linalg::vector::project_out_constant;
use parsdd_solver::error::{BuildError, SolveError};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};
use parsdd_solver::SolveOutcome;

/// The two pool widths the classification must agree across.
const POOL_WIDTHS: [usize; 2] = [1, 4];

fn in_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

/// A compact, order-stable fingerprint of a solve classification: enough
/// to detect any cross-pool drift (including in the recovery trace or the
/// solution bits) without dumping whole vectors into failure messages.
fn classify(r: &Result<SolveOutcome, SolveError>) -> String {
    match r {
        Ok(out) => {
            let bits = out.x.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, v| {
                (h ^ v.to_bits()).wrapping_mul(0x1000_0000_01b3)
            });
            let rungs: Vec<String> = out.recovery.iter().map(|s| s.rung.to_string()).collect();
            format!(
                "ok converged={} xbits={bits:016x} rungs={rungs:?}",
                out.converged
            )
        }
        Err(e) => format!("err {e:?}"),
    }
}

fn small_graph_strategy() -> impl Strategy<Value = Graph> {
    (10usize..60, 0usize..60, 1u64..1_000_000).prop_map(|(n, extra, seed)| {
        let m = (n - 1) + extra.min(n * (n - 1) / 2 - (n - 1));
        generators::weighted_random_graph(n, m, 1.0, 16.0, seed)
    })
}

fn seeded_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed.wrapping_add(3))) % 17) as f64 - 8.0)
        .collect();
    project_out_constant(&mut b);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A non-finite entry anywhere in the rhs is rejected with the exact
    /// poisoned index, identically at both pool widths.
    #[test]
    fn nonfinite_rhs_is_typed(g in small_graph_strategy(), pos in 0u64..1_000_000, kind in 0usize..3) {
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
        let index = (pos as usize) % g.n();
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][kind];
        let mut b = seeded_rhs(g.n(), pos);
        b[index] = poison;
        let mut fingerprints = Vec::new();
        for width in POOL_WIDTHS {
            let r = in_pool(width, || solver.try_solve(&b));
            match &r {
                Err(SolveError::NonFiniteRhs { column: 0, index: i }) => prop_assert_eq!(*i, index),
                other => prop_assert!(false, "misclassified: {:?}", classify(other)),
            }
            fingerprints.push(classify(&r));
        }
        prop_assert_eq!(&fingerprints[0], &fingerprints[1]);
    }

    /// Non-finite or non-positive edge weights smuggled past validation
    /// are caught at build time with the offending edge id.
    #[test]
    fn adversarial_weights_are_typed(g in small_graph_strategy(), pos in 0u64..1_000_000, kind in 0usize..4) {
        let edge = (pos as usize) % g.m();
        let weight = [f64::NAN, f64::INFINITY, -1.0, 0.0][kind];
        let mut edges = g.edges().to_vec();
        edges[edge].w = weight;
        let bad = Graph::from_edges_unchecked(g.n(), edges);
        for width in POOL_WIDTHS {
            let r = in_pool(width, || SddSolver::try_new_laplacian(&bad, SddSolverOptions::default()));
            match r {
                Err(BuildError::InvalidGraph(
                    GraphDataError::NonFiniteWeight { edge: e, .. }
                    | GraphDataError::NonPositiveWeight { edge: e, .. },
                )) => prop_assert_eq!(e, edge),
                other => prop_assert!(false, "misclassified: {:?}", other.err().map(|e| e.to_string())),
            }
        }
    }

    /// A rhs of the wrong length is a `DimensionMismatch` carrying both
    /// lengths — for single solves and for any column of a batch.
    #[test]
    fn mismatched_dimensions_are_typed(g in small_graph_strategy(), delta in 1usize..5, grow in 0usize..2) {
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
        // delta >= 1 and n >= 10, so `wrong` never equals n.
        let wrong = if grow == 1 { g.n() + delta } else { g.n() - delta };
        let b = seeded_rhs(wrong, 5);
        for width in POOL_WIDTHS {
            let r = in_pool(width, || solver.try_solve(&b));
            match r {
                Err(SolveError::DimensionMismatch { expected, got, column: 0 }) => {
                    prop_assert_eq!(expected, g.n());
                    prop_assert_eq!(got, wrong);
                }
                other => prop_assert!(false, "misclassified: {}", classify(&other)),
            }
            // In a batch, the column index points at the bad rhs.
            let batch = vec![seeded_rhs(g.n(), 1), b.clone()];
            let rb = in_pool(width, || solver.try_solve_many(&batch));
            prop_assert!(matches!(
                rb,
                Err(SolveError::DimensionMismatch { column: 1, .. })
            ));
        }
    }

    /// Isolated vertices are legal; a rhs that loads one is a typed
    /// singular-system rejection, and a rhs that doesn't solves cleanly.
    /// Classification is identical at both pool widths.
    #[test]
    fn isolated_vertices_are_classified(g in small_graph_strategy(), extra in 1usize..4, seed in 0u64..1_000_000) {
        let n = g.n() + extra;
        let padded = Graph::validated(n, g.edges().to_vec()).expect("isolated vertices are legal");
        let solver = SddSolver::try_new_laplacian(&padded, SddSolverOptions::default())
            .expect("build must accept isolated vertices");

        // Balanced on the connected part, zero on the isolated tail: solvable.
        let mut good = seeded_rhs(g.n(), seed);
        good.resize(n, 0.0);
        // Same rhs with one isolated vertex loaded: no solution exists.
        let mut bad = good.clone();
        bad[g.n() + (seed as usize) % extra] = 1.0;

        let mut fingerprints = Vec::new();
        for width in POOL_WIDTHS {
            let ok = in_pool(width, || solver.try_solve(&good));
            match &ok {
                Ok(out) => prop_assert!(out.converged),
                other => prop_assert!(false, "solvable rhs misclassified: {}", classify(other)),
            }
            let err = in_pool(width, || solver.try_solve(&bad));
            prop_assert!(
                matches!(err, Err(SolveError::SingularSystem { column: 0, .. })),
                "loaded isolated vertex misclassified: {}", classify(&err)
            );
            fingerprints.push(classify(&ok));
        }
        prop_assert_eq!(&fingerprints[0], &fingerprints[1]);
    }

    /// On a disconnected graph, a globally balanced rhs whose sums are
    /// nonzero *per component* is rejected with the offending component;
    /// rebalancing each component makes the same system solvable.
    #[test]
    fn component_sums_are_enforced(clusters in 2usize..4, size in 8usize..24, seed in 1u64..1_000_000) {
        let one = generators::weighted_random_graph(size, 2 * size, 1.0, 8.0, seed);
        let n = clusters * size;
        let mut edges: Vec<Edge> = Vec::new();
        for c in 0..clusters {
            let off = (c * size) as u32;
            edges.extend(
                one.edges()
                    .iter()
                    .map(|e| Edge::new(e.u + off, e.v + off, e.w)),
            );
        }
        let g = Graph::validated(n, edges).expect("shifted copies are legal");
        let solver = SddSolver::try_new_laplacian(&g, SddSolverOptions::default()).expect("build");

        // Every cluster's sum is a full +1 — far past the detection
        // threshold — so the first component is the one reported.
        let mut bad = seeded_rhs(size, seed);
        for v in bad.iter_mut() {
            *v += 1.0 / size as f64;
        }
        let mut unbalanced: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..clusters {
            unbalanced.extend_from_slice(&bad);
        }

        for width in POOL_WIDTHS {
            let r = in_pool(width, || solver.try_solve(&unbalanced));
            prop_assert!(
                matches!(r, Err(SolveError::SingularSystem { column: 0, .. })),
                "per-component imbalance misclassified: {}", classify(&r)
            );
        }

        // Rebalance every cluster: the same system becomes solvable.
        let mut balanced = unbalanced.clone();
        for c in 0..clusters {
            let chunk = &mut balanced[c * size..(c + 1) * size];
            let mean = chunk.iter().sum::<f64>() / size as f64;
            for v in chunk.iter_mut() {
                *v -= mean;
            }
        }
        for width in POOL_WIDTHS {
            let r = in_pool(width, || solver.try_solve(&balanced));
            match &r {
                Ok(out) => prop_assert!(out.converged),
                other => prop_assert!(false, "rebalanced rhs misclassified: {}", classify(other)),
            }
        }
    }
}

/// Empty graphs are a typed build error, not a panic — through both the
/// validated constructor and the fallible solver front door.
#[test]
fn empty_graph_is_typed() {
    let g = Graph::validated(0, Vec::new()).expect("an empty graph is representable");
    assert!(matches!(
        SddSolver::try_new_laplacian(&g, SddSolverOptions::default()),
        Err(BuildError::EmptyGraph)
    ));
}

/// A rhs with a nonzero global sum on a *connected* graph is the simplest
/// singular violation: component 0 carries the whole imbalance.
#[test]
fn nonzero_global_sum_is_typed() {
    let g = generators::grid2d(8, 8, |_, _| 1.0);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
    let b = vec![1.0; g.n()];
    match solver.try_solve(&b) {
        Err(SolveError::SingularSystem {
            column: 0,
            component: 0,
            imbalance,
        }) => assert!(imbalance > 0.0),
        other => panic!("misclassified: {:?}", other.map(|o| o.converged)),
    }
}
