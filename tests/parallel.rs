//! Scaling and determinism tests for the real parallel runtime.
//!
//! Four claims are pinned down here:
//!
//! 1. **Concurrency is real** — `rayon::join` on a 2-wide pool executes its
//!    arms on different workers simultaneously (proved by a rendezvous that
//!    would time out under sequential execution), and leaf tasks observe
//!    the width of the pool they run in.
//! 2. **Ordered combinators stay ordered** — `par_iter().map().collect()`
//!    and `filter().collect()` return exactly the sequential result on a
//!    wide pool.
//! 3. **The PRAM primitives agree with their sequential counterparts** on
//!    proptest-generated inputs spanning the sequential/parallel cutoff.
//! 4. **The full solver pipeline is bitwise reproducible across widths** —
//!    a fixed-iteration solve produces identical iterates and residuals at
//!    1 and 4 threads (the shim's width-independent reduction trees at
//!    work; real rayon does not give this).

use proptest::prelude::*;
use rayon::prelude::*;

use parsdd_graph::parutil::{exclusive_prefix_sum, par_count, par_filter, with_threads};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Both arms of a `join` must be in flight at once on a 2-wide pool: each
/// arm bumps a shared counter and then waits (with a deadline, so a
/// regression to sequential execution fails instead of hanging) until it
/// has seen the other arm arrive.
#[test]
fn join_overlaps_across_workers() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("pool");
    let arrived = AtomicUsize::new(0);
    let rendezvous = || {
        arrived.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(30);
        while arrived.load(Ordering::SeqCst) < 2 {
            assert!(
                Instant::now() < deadline,
                "join arms never overlapped: runtime is executing sequentially"
            );
            std::thread::yield_now();
        }
        arrived.load(Ordering::SeqCst)
    };
    let (a, b) = pool.install(|| rayon::join(rendezvous, rendezvous));
    assert_eq!((a, b), (2, 2));
}

/// Parallel leaves run *inside* the installed pool: every task observes
/// that pool's width via `current_num_threads`, even though the test
/// thread itself is not a worker.
#[test]
fn pool_width_is_visible_from_worker_tasks() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .expect("pool");
    let widths: Vec<usize> = pool.install(|| {
        (0..100_000usize)
            .into_par_iter()
            .map(|_| rayon::current_num_threads())
            .collect()
    });
    assert_eq!(widths.len(), 100_000);
    assert!(widths.iter().all(|&w| w == 3));
}

/// Ordered combinators return exactly the sequential result on a wide pool.
#[test]
fn ordered_combinators_preserve_order_on_wide_pool() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");
    let xs: Vec<u64> = (0..300_000u64).collect();
    let tripled: Vec<u64> = pool.install(|| xs.par_iter().map(|&x| 3 * x).collect());
    assert!(tripled.iter().enumerate().all(|(i, &v)| v == 3 * i as u64));
    let picked: Vec<u64> = pool.install(|| xs.par_iter().copied().filter(|x| x % 7 == 0).collect());
    let expect: Vec<u64> = xs.iter().copied().filter(|x| x % 7 == 0).collect();
    assert_eq!(picked, expect);
}

/// Sorting through the parallel merge sort matches std, including the
/// relative order of equal keys, at several pool widths.
#[test]
fn par_sort_matches_std_across_widths() {
    let input: Vec<(u32, u32)> = (0..150_000u32)
        .map(|i| (i.wrapping_mul(0x9e37_79b9) % 512, i))
        .collect();
    let mut expect = input.clone();
    expect.sort_by_key(|p| p.0);
    for threads in [1usize, 2, 4] {
        let sorted = with_threads(threads, || {
            let mut v = input.clone();
            v.par_sort_by_key(|p| p.0);
            v
        });
        assert_eq!(
            sorted, expect,
            "stable par_sort diverged at width {threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Prefix sums and compaction agree with their sequential definitions
    /// on inputs spanning the SEQ_CUTOFF boundary, at widths 1 and 2.
    #[test]
    fn pram_primitives_match_sequential(len in 0usize..20_000, seed in 0u64..1_000, threads in 1usize..3) {
        // Deterministic LCG input.
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let xs: Vec<usize> = (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 59) as usize
            })
            .collect();

        let (prefix, kept, count) = with_threads(threads, || {
            (
                exclusive_prefix_sum(&xs),
                par_filter(&xs, |x| x % 3 == 0),
                par_count(&xs, |x| x % 2 == 1),
            )
        });

        let mut acc = 0usize;
        let mut seq_prefix = vec![0usize];
        for &x in &xs {
            acc += x;
            seq_prefix.push(acc);
        }
        prop_assert_eq!(prefix, seq_prefix);
        let seq_kept: Vec<usize> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(kept, seq_kept);
        prop_assert_eq!(count, xs.iter().filter(|x| *x % 2 == 1).count());
    }
}

/// `scope` spawns must also be in flight simultaneously on a 2-wide pool:
/// the same rendezvous as [`join_overlaps_across_workers`], but through
/// the dynamic-task API the chain builder uses.
#[test]
fn scope_spawns_overlap_across_workers() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("pool");
    let arrived = AtomicUsize::new(0);
    let rendezvous = |arrived: &AtomicUsize| {
        arrived.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(30);
        while arrived.load(Ordering::SeqCst) < 2 {
            assert!(
                Instant::now() < deadline,
                "scope spawns never overlapped: runtime is executing sequentially"
            );
            std::thread::yield_now();
        }
    };
    pool.install(|| {
        rayon::scope(|s| {
            s.spawn(|_| rendezvous(&arrived));
            s.spawn(|_| rendezvous(&arrived));
        })
    });
    assert_eq!(arrived.load(Ordering::SeqCst), 2);
}

/// A panic inside a spawned task propagates out of `scope` — after every
/// other spawn has completed — and the pool stays usable afterwards.
#[test]
fn scope_propagates_spawn_panic_and_pool_survives() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("pool");
    let finished = AtomicUsize::new(0);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            rayon::scope(|s| {
                s.spawn(|_| panic!("deliberate task panic"));
                s.spawn(|_| {
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            })
        })
    }));
    assert!(outcome.is_err(), "spawned panic was swallowed by scope");
    assert_eq!(
        finished.load(Ordering::SeqCst),
        1,
        "sibling spawn did not complete before the scope unwound"
    );
    // The pool must not be poisoned by the unwound scope.
    let sum: u64 = pool.install(|| (0..10_000u64).into_par_iter().sum());
    assert_eq!(sum, 49_995_000);
}

/// Everything the chain build decides, as comparable bits: structure,
/// per-level κ/scales/calibrated Chebyshev bounds, and the preconditioner
/// action on a deterministic right-hand side (which transitively covers
/// the eliminations, sparsifier matrices, and bottom factor).
fn chain_fingerprint(g: &parsdd_graph::Graph, rhs_seed: u64) -> Vec<u64> {
    use parsdd_solver::chain::{build_chain, ChainOptions};
    let chain = build_chain(g, &ChainOptions::default());
    let mut fp = vec![chain.depth() as u64];
    for lvl in chain.levels() {
        fp.push(lvl.n() as u64);
        fp.push(lvl.m() as u64);
        fp.push(lvl.kappa.to_bits());
        fp.push(lvl.tree_scale.to_bits());
        fp.push(lvl.kappa_clamped as u64);
        fp.push(lvl.measured_ratio.0.to_bits());
        fp.push(lvl.measured_ratio.1.to_bits());
        fp.push(lvl.sparsifier_edges as u64);
        fp.push(lvl.subgraph_edges as u64);
        fp.push(lvl.inner_iterations as u64);
        fp.push(lvl.cheb_bounds.0.to_bits());
        fp.push(lvl.cheb_bounds.1.to_bits());
    }
    fp.push(chain.bottom_graph().n() as u64);
    fp.push(chain.bottom_graph().m() as u64);
    let b: Vec<f64> = (0..g.n())
        .map(|i| (((i as u64).wrapping_mul(rhs_seed.wrapping_add(7)) % 23) as f64) - 11.0)
        .collect();
    let mut z = Vec::new();
    chain.precondition_block_rm(&b, 1, &mut z);
    fp.extend(z.iter().map(|v| v.to_bits()));
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The parallel chain build is **bitwise deterministic across pool
    /// widths**: structure, calibration, and preconditioner action are
    /// identical at widths 1, 2, and 4 on the grid and two zoo families.
    #[test]
    fn build_chain_bitwise_identical_across_widths(family in 0usize..3, rhs_seed in 0u64..1_000) {
        let g = match family {
            0 => parsdd_graph::generators::grid2d(40, 40, |x, y| 1.0 + ((x * 3 + y) % 5) as f64),
            1 => parsdd_bench::zoo::build("rmat", parsdd_bench::zoo::Tier::Small),
            _ => parsdd_bench::zoo::build("road", parsdd_bench::zoo::Tier::Small),
        };
        let base = with_threads(1, || chain_fingerprint(&g, rhs_seed));
        for threads in [2usize, 4] {
            let fp = with_threads(threads, || chain_fingerprint(&g, rhs_seed));
            prop_assert_eq!(&base, &fp);
        }
    }
}

/// The full paper pipeline — decomposition, low-stretch subgraph,
/// preconditioner chain, and a fixed number of outer solver iterations on
/// a grid big enough to cross every parallel cutoff — produces **bitwise
/// identical** iterates and residuals at 1 and 4 threads.
#[test]
fn pipeline_residuals_identical_at_1_and_n_threads() {
    let g = parsdd_graph::generators::grid2d(96, 96, |_, _| 1.0);
    let b: Vec<f64> = (0..g.n()).map(|i| ((i % 13) as f64) - 6.0).collect();
    // Fixed work: tolerance 0 never converges, so both runs execute exactly
    // `max_iterations` outer iterations over identical reduction trees.
    let options = SddSolverOptions {
        tolerance: 0.0,
        max_iterations: 6,
        ..SddSolverOptions::default()
    };

    let run = |threads: usize| {
        with_threads(threads, || {
            let solver = SddSolver::new_laplacian(&g, options);
            solver.solve(&b)
        })
    };
    let seq = run(1);
    let par = run(4);

    assert_eq!(seq.iterations, par.iterations);
    assert_eq!(
        seq.relative_residual.to_bits(),
        par.relative_residual.to_bits(),
        "residual differs between 1 and 4 threads: {} vs {}",
        seq.relative_residual,
        par.relative_residual
    );
    assert_eq!(seq.x.len(), par.x.len());
    for (i, (a, b)) in seq.x.iter().zip(&par.x).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "solution component {i} differs between 1 and 4 threads: {a} vs {b}"
        );
    }
}
