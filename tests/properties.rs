//! Property-based tests (proptest) on the core invariants of the paper's
//! algorithms, run across randomly generated graphs and parameters.

use proptest::prelude::*;

use parsdd::prelude::*;
use parsdd_decomp::split_graph;
use parsdd_graph::unionfind::UnionFind;
use parsdd_linalg::laplacian::{laplacian_quadratic_form, LaplacianOp};
use parsdd_linalg::operator::LinearOperator;
use parsdd_linalg::vector::{norm2, project_out_constant};
use parsdd_lsst::stretch::stretch_over_tree;

/// Strategy: a connected weighted random graph with n in [10, 120] and a
/// moderate number of extra edges.
fn connected_graph_strategy() -> impl Strategy<Value = Graph> {
    (10usize..120, 0usize..200, 1u64..1_000_000).prop_map(|(n, extra, seed)| {
        let m = (n - 1) + extra.min(n * (n - 1) / 2 - (n - 1));
        parsdd::graph::generators::weighted_random_graph(n, m, 1.0, 16.0, seed)
    })
}

/// Strategy: a structurally diverse connected graph drawn from the zoo
/// generator families — power-law (rMAT), small-world, road-like skewed
/// planar mesh, 3D lattice, and near-disconnected clusters — plus the
/// uniform random family, all at proptest-drawn seeds. Every generator
/// here guarantees a connected output (rMAT restricts to its giant
/// component).
fn diverse_graph_strategy() -> impl Strategy<Value = Graph> {
    (0usize..6, 1u64..1_000_000).prop_map(|(kind, seed)| match kind {
        0 => parsdd::graph::generators::rmat(7, 700, seed),
        1 => parsdd::graph::generators::watts_strogatz(120 + (seed % 80) as usize, 6, 0.1, seed),
        2 => parsdd::graph::generators::road_mesh(12, 12, 0.6, 1.2, seed),
        3 => parsdd::graph::generators::lattice3d(5, 5, 4, 4.0, seed),
        4 => parsdd::graph::generators::near_disconnected_clusters(3, 40, 80, 1e-3, seed),
        _ => parsdd::graph::generators::weighted_random_graph(80, 300, 1.0, 16.0, seed),
    })
}

fn seeded_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed.wrapping_add(3))) % 17) as f64 - 8.0)
        .collect();
    project_out_constant(&mut b);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// splitGraph produces a partition: every vertex gets a label, centers
    /// own themselves, BFS-tree parents stay in-component, and the tree
    /// edges form a forest (Theorem 4.1 (1)–(2) structural invariants).
    #[test]
    fn split_graph_partition_invariants(g in connected_graph_strategy(), rho in 2u32..40, seed in 0u64..1000) {
        let split = split_graph(&g, &SplitParams::new(rho).with_seed(seed));
        prop_assert_eq!(split.labels.len(), g.n());
        prop_assert!(split.labels.iter().all(|&l| (l as usize) < split.component_count));
        for (c, &center) in split.centers.iter().enumerate() {
            prop_assert_eq!(split.labels[center as usize] as usize, c);
            prop_assert_eq!(split.dist_to_center[center as usize], 0);
        }
        let tree = split.tree_edges();
        prop_assert_eq!(tree.len(), g.n() - split.component_count);
        let mut uf = UnionFind::new(g.n());
        for &e in &tree {
            let edge = g.edge(e);
            prop_assert!(uf.unite(edge.u, edge.v));
            prop_assert_eq!(split.labels[edge.u as usize], split.labels[edge.v as usize]);
        }
    }

    /// AKPW always outputs a spanning tree (on connected inputs) whose
    /// total stretch is finite and at least m (every edge has stretch >= 1
    /// against d_G; over a tree contained in G the tree distance of an
    /// edge's endpoints is at least the shortest path, which for the
    /// *minimum-weight* normalisation used here is bounded below by a
    /// positive value).
    #[test]
    fn akpw_spanning_tree_invariants(g in connected_graph_strategy(), z in 8f64..64.0, seed in 0u64..1000) {
        let tree = akpw(&g, &AkpwParams::practical(z).with_seed(seed));
        prop_assert_eq!(tree.tree_edges.len(), g.n() - 1);
        let mut uf = UnionFind::new(g.n());
        for &e in &tree.tree_edges {
            let edge = g.edge(e);
            prop_assert!(uf.unite(edge.u, edge.v), "cycle in AKPW tree");
        }
        let report = stretch_over_tree(&g, &tree.tree_edges);
        prop_assert!(report.total_stretch.is_finite());
        prop_assert!(report.min_stretch > 0.0);
    }

    /// LSSubgraph outputs a connected subgraph whose edge count lies
    /// between n-1 and m (Theorem 5.9 (1) structural bound).
    #[test]
    fn ls_subgraph_edge_count_bounds(g in connected_graph_strategy(), lambda in 1u32..4, seed in 0u64..1000) {
        let out = ls_subgraph(&g, &LsSubgraphParams::practical(16.0, lambda).with_seed(seed));
        let edges = out.all_edges();
        prop_assert!(edges.len() >= g.n() - 1);
        prop_assert!(edges.len() <= g.m());
        let sub = g.edge_subgraph(&edges);
        prop_assert!(parsdd::graph::components::is_connected(&sub));
    }

    /// The Laplacian quadratic form is non-negative and vanishes exactly on
    /// constants; the operator and the edge-wise form agree.
    #[test]
    fn laplacian_psd_invariants(g in connected_graph_strategy(), shift in -5.0f64..5.0) {
        let op = LaplacianOp::new(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| ((i as f64) * 0.37).sin() + shift).collect();
        let qf = laplacian_quadratic_form(&g, &x);
        prop_assert!(qf >= -1e-9);
        let lx = op.apply_vec(&x);
        let via_op: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        prop_assert!((qf - via_op).abs() <= 1e-6 * qf.abs().max(1.0));
        let constant = vec![shift; g.n()];
        // The constant vector is in the null space; allow for floating-point
        // cancellation error proportional to the weight magnitudes.
        let scale = (1.0 + shift.abs()) * (1.0 + g.total_weight()).sqrt();
        prop_assert!(op.a_norm(&constant) <= 1e-6 * scale);
    }

    /// Greedy elimination preserves the solution: eliminating, solving the
    /// reduced system exactly (CG to high tolerance), and back-substituting
    /// satisfies the original system.
    #[test]
    fn elimination_preserves_solutions(g in connected_graph_strategy(), seed in 0u64..1000) {
        use parsdd_solver::elimination::greedy_elimination;
        let elim = greedy_elimination(&g, seed);
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i * 31 + 7) % 23) as f64 - 11.0).collect();
        project_out_constant(&mut b);
        let (reduced, work) = elim.forward_rhs(&b);
        let x_reduced = if elim.reduced_graph.m() == 0 {
            vec![0.0; elim.reduced_graph.n()]
        } else {
            let op = LaplacianOp::new(&elim.reduced_graph);
            parsdd_linalg::cg::cg_solve(
                &op,
                &reduced,
                &parsdd_linalg::cg::CgOptions { max_iters: 50_000, tol: 1e-13 },
            )
            .x
        };
        let x = elim.back_substitute(&work, &x_reduced);
        let op = LaplacianOp::new(&g);
        let r = op.residual(&x, &b);
        prop_assert!(norm2(&r) <= 1e-5 * norm2(&b).max(1.0), "residual {}", norm2(&r));
    }

    /// The end-to-end solver reaches its tolerance on random connected
    /// graphs (Theorem 1.1's accuracy contract, empirically).
    #[test]
    fn solver_converges_on_random_graphs(g in connected_graph_strategy(), seed in 0u64..1000) {
        let mut b: Vec<f64> = (0..g.n())
            .map(|i| (((i as u64).wrapping_mul(seed + 3)) % 17) as f64 - 8.0)
            .collect();
        project_out_constant(&mut b);
        if norm2(&b) < 1e-12 {
            return Ok(());
        }
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-7));
        let out = solver.solve(&b);
        prop_assert!(out.converged, "rel residual {}", out.relative_residual);
        let op = LaplacianOp::new(&g);
        prop_assert!(norm2(&op.residual(&out.x, &b)) <= 1e-5 * norm2(&b));
    }

    /// The solver reaches its tolerance on every zoo generator family, not
    /// just grids and uniform random graphs (the workload-zoo accuracy
    /// contract at property-test scale).
    #[test]
    fn solver_converges_on_diverse_families(g in diverse_graph_strategy(), seed in 0u64..1000) {
        let b = seeded_rhs(g.n(), seed);
        if norm2(&b) < 1e-12 {
            return Ok(());
        }
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-7));
        let out = solver.solve(&b);
        prop_assert!(
            out.converged && out.relative_residual <= 1e-7,
            "rel residual {} after {} iterations on n={} m={}",
            out.relative_residual, out.iterations, g.n(), g.m()
        );
    }

    /// Batched multi-RHS solves are bitwise identical to looped
    /// single-RHS solves on arbitrary connected families — the
    /// block-composition contract holds beyond the grid, including on
    /// near-disconnected inputs where per-column deflation and stall
    /// tracking diverge between columns.
    #[test]
    fn batched_solve_matches_looped_bitwise_on_diverse_families(g in diverse_graph_strategy(), seed in 0u64..1000) {
        let bs: Vec<Vec<f64>> = (0..3)
            .map(|s| seeded_rhs(g.n(), seed.wrapping_add(s * 101)))
            .collect();
        let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-7));
        let batched = solver.solve_many(&bs);
        prop_assert_eq!(batched.len(), bs.len());
        for (b, out) in bs.iter().zip(&batched) {
            let single = solver.solve(b);
            let batched_bits: Vec<u64> = out.x.iter().map(|v| v.to_bits()).collect();
            let single_bits: Vec<u64> = single.x.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(batched_bits, single_bits);
            prop_assert_eq!(single.iterations, out.iterations);
            prop_assert_eq!(single.converged, out.converged);
        }
    }
}
