//! Workload-zoo conformance harness: the solver must hold up beyond the
//! grid (DESIGN.md §2.4).
//!
//! Every family × tier in `parsdd_bench::zoo` is pinned to a quality
//! envelope: it must converge to the 1e-8 tolerance, its chain depth must
//! stay bounded, and its work per preconditioner application must stay
//! within a per-family budget (expressed as a multiple of the input edge
//! count, with ≈2× headroom over the measured value so envelopes catch
//! regressions without flaking on incidental drift). The barbell family
//! additionally must exercise the sparsifier's κ clamp on its medium tier
//! — that path exists for near-disconnected inputs and would otherwise be
//! dead in CI.
//!
//! Small tiers run everywhere, including debug `cargo test`. Medium and
//! large tiers are `#[ignore]`d and run in the release "deep-chain" CI
//! job:
//! `cargo test --release --test zoo -- --include-ignored --nocapture`.

use parsdd_bench::zoo::{self, Tier};
use parsdd_graph::parutil::with_threads;
use parsdd_solver::chain::{build_chain, ChainOptions};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

const TOLERANCE: f64 = 1e-8;

/// Per-case quality envelope. `max_work_per_edge` bounds
/// `work_per_application / m`; `min_clamp_hits` forces the κ-clamp path
/// to stay exercised where the family is designed to hit it.
struct Envelope {
    family: &'static str,
    tier: Tier,
    max_depth: usize,
    max_iterations: usize,
    max_work_per_edge: f64,
    min_clamp_hits: usize,
}

/// Measured values (release, defaults) are recorded next to each row so a
/// future regression is diagnosable from the diff alone.
const ENVELOPES: &[Envelope] = &[
    // rmat: measured depth 1/2/2, it 27/37/40, work 14.5/172.1/7969.5×m.
    // The large tier keeps an iterative bottom (power-law cores do not
    // eliminate well), hence the wide work budget.
    env("rmat", Tier::Small, 3, 60, 40.0, 0),
    env("rmat", Tier::Medium, 4, 80, 400.0, 0),
    env("rmat", Tier::Large, 4, 80, 16_000.0, 0),
    // smallworld: measured depth 3/1/1, it 40/41/52, work 565/2641/2421×m.
    // Expanders resist both elimination and sparsification; medium/large
    // run an iterative bottom and the envelope says so honestly.
    env("smallworld", Tier::Small, 5, 80, 1_200.0, 0),
    env("smallworld", Tier::Medium, 3, 90, 5_500.0, 0),
    env("smallworld", Tier::Large, 3, 110, 5_000.0, 0),
    // road: measured depth 2/5/6, it 38/94/154, work 16.9/127.1/139.3×m.
    // Deep chains of small direct bottoms — the healthiest non-grid
    // family, so the envelopes are tight.
    env("road", Tier::Small, 4, 80, 40.0, 0),
    env("road", Tier::Medium, 7, 160, 300.0, 0),
    env("road", Tier::Large, 8, 190, 300.0, 0),
    // lattice3d: measured depth 1/1/1, it 32/44/40, work 41.6/2925/3152×m.
    // Degree-6 stencils starve greedy elimination, so medium falls back
    // to an iterative bottom; the large tier runs the adaptive schedule
    // (see `zoo::chain_options` — the fixed schedule leaf-blows-up there)
    // and must stay in the same iterative-bottom regime.
    env("lattice3d", Tier::Small, 3, 70, 90.0, 0),
    env("lattice3d", Tier::Medium, 3, 90, 6_000.0, 0),
    env("lattice3d", Tier::Large, 3, 90, 6_500.0, 0),
    // barbell: measured depth 1/6/1, it 24/45/35, work 11.5/1637/3908×m,
    // κ-clamp ×1 on medium. Light intra-cluster extras starve the stretch
    // budget into the κ floor there; the envelope keeps that path alive.
    env("barbell", Tier::Small, 3, 50, 25.0, 0),
    env("barbell", Tier::Medium, 8, 90, 3_500.0, 1),
    env("barbell", Tier::Large, 3, 80, 8_000.0, 0),
];

const fn env(
    family: &'static str,
    tier: Tier,
    max_depth: usize,
    max_iterations: usize,
    max_work_per_edge: f64,
    min_clamp_hits: usize,
) -> Envelope {
    Envelope {
        family,
        tier,
        max_depth,
        max_iterations,
        max_work_per_edge,
        min_clamp_hits,
    }
}

fn envelope(family: &str, tier: Tier) -> &'static Envelope {
    ENVELOPES
        .iter()
        .find(|e| e.family == family && e.tier == tier)
        .unwrap_or_else(|| panic!("no envelope pinned for {family}/{}", tier.name()))
}

/// Builds, solves, and asserts one zoo case against its envelope.
fn check(family: &str, tier: Tier) {
    let e = envelope(family, tier);
    let g = zoo::build(family, tier);
    let run = zoo::run(&g, zoo::chain_options(family, tier), TOLERANCE);
    let q = &run.quality;
    eprintln!(
        "[zoo {family}/{}] n={} m={} it={} res={:.3e} · {}",
        tier.name(),
        g.n(),
        g.m(),
        run.iterations,
        run.relative_residual,
        q.summary()
    );
    assert!(
        run.converged && run.relative_residual <= TOLERANCE,
        "{family}/{}: not converged (it={} res={:.3e})",
        tier.name(),
        run.iterations,
        run.relative_residual
    );
    assert!(
        run.iterations <= e.max_iterations,
        "{family}/{}: {} iterations exceeds envelope {}",
        tier.name(),
        run.iterations,
        e.max_iterations
    );
    assert!(
        q.depth <= e.max_depth,
        "{family}/{}: depth {} exceeds envelope {}",
        tier.name(),
        q.depth,
        e.max_depth
    );
    let work_per_edge = q.work_per_input_edge;
    assert!(
        work_per_edge.is_finite() && work_per_edge <= e.max_work_per_edge,
        "{family}/{}: work/app {:.1}×m exceeds envelope {:.1}×m",
        tier.name(),
        work_per_edge,
        e.max_work_per_edge
    );
    assert!(
        q.kappa_clamp_hits >= e.min_clamp_hits,
        "{family}/{}: κ-clamp hit {} levels, envelope requires ≥ {} — the \
         clamp path this family exists to exercise has gone dead",
        tier.name(),
        q.kappa_clamp_hits,
        e.min_clamp_hits
    );
}

// ---------------------------------------------------------------------------
// Small tiers: run everywhere, one test per family for readable failures.
// ---------------------------------------------------------------------------

#[test]
fn rmat_small_within_envelope() {
    check("rmat", Tier::Small);
}

#[test]
fn smallworld_small_within_envelope() {
    check("smallworld", Tier::Small);
}

#[test]
fn road_small_within_envelope() {
    check("road", Tier::Small);
}

#[test]
fn lattice3d_small_within_envelope() {
    check("lattice3d", Tier::Small);
}

#[test]
fn barbell_small_within_envelope() {
    check("barbell", Tier::Small);
}

// ---------------------------------------------------------------------------
// Medium/large tiers: release-mode territory, run by the deep-chain CI job
// via `--include-ignored`.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "release-mode deep-chain job workload"]
fn rmat_upper_tiers_within_envelope() {
    check("rmat", Tier::Medium);
    check("rmat", Tier::Large);
}

#[test]
#[ignore = "release-mode deep-chain job workload"]
fn smallworld_upper_tiers_within_envelope() {
    check("smallworld", Tier::Medium);
    check("smallworld", Tier::Large);
}

#[test]
#[ignore = "release-mode deep-chain job workload"]
fn road_upper_tiers_within_envelope() {
    check("road", Tier::Medium);
    check("road", Tier::Large);
}

#[test]
#[ignore = "release-mode deep-chain job workload"]
fn lattice3d_upper_tiers_within_envelope() {
    check("lattice3d", Tier::Medium);
    check("lattice3d", Tier::Large);
}

#[test]
#[ignore = "release-mode deep-chain job workload"]
fn barbell_upper_tiers_within_envelope() {
    check("barbell", Tier::Medium);
    check("barbell", Tier::Large);
}

// ---------------------------------------------------------------------------
// Generator determinism: every zoo graph is bitwise-identical across thread
// counts and across repeated runs at a fixed seed. The generators are
// sequential by construction; this pins that contract so a future
// parallelisation cannot silently break reproducibility.
// ---------------------------------------------------------------------------

fn edge_bits(g: &parsdd_graph::Graph) -> Vec<(u32, u32, u64)> {
    g.edges()
        .iter()
        .map(|e| (e.u, e.v, e.w.to_bits()))
        .collect()
}

#[test]
fn zoo_generators_deterministic_across_threads_and_runs() {
    for &family in zoo::FAMILIES {
        let reference = edge_bits(&zoo::build(family, Tier::Small));
        let repeat = edge_bits(&zoo::build(family, Tier::Small));
        assert_eq!(
            reference, repeat,
            "{family}: repeated build at fixed seed differs"
        );
        for threads in [1usize, 2, 4] {
            let built = with_threads(threads, || edge_bits(&zoo::build(family, Tier::Small)));
            assert_eq!(
                reference, built,
                "{family}: build differs at {threads} threads"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Adaptive per-level parameter selection: opt-in only. Defaults stay
// pinned (grid-path bitwise contract), and the adaptive schedule must
// build a working chain on structurally different families.
// ---------------------------------------------------------------------------

#[test]
fn adaptive_selection_is_opt_in_and_defaults_are_pinned() {
    let d = ChainOptions::default();
    assert!(!d.adaptive, "adaptive selection must stay opt-in");
    assert_eq!(d.adaptive_kappa_target, 256.0);
    assert_eq!(d.tree_scale, 8.0);
    assert_eq!(d.extra_fraction, 0.35);
    // A default build must be bitwise-independent of the adaptive knobs'
    // values (they are dead unless `adaptive` is set).
    let g = zoo::build("road", Tier::Small);
    let base = build_chain(&g, &ChainOptions::default());
    let tweaked = ChainOptions {
        adaptive_kappa_target: 64.0,
        ..Default::default()
    };
    let same = build_chain(&g, &tweaked);
    assert_eq!(base.stats().level_edges, same.stats().level_edges);
    assert_eq!(base.stats().kappa_eff, same.stats().kappa_eff);
}

#[test]
fn adaptive_selection_converges_off_grid() {
    for family in ["road", "barbell"] {
        let g = zoo::build(family, Tier::Small);
        let mut opts = SddSolverOptions::default().with_tolerance(TOLERANCE);
        opts.chain = ChainOptions::default().with_adaptive();
        let solver = SddSolver::new_laplacian(&g, opts);
        let b = parsdd_bench::workloads::rhs(g.n(), 7);
        let out = solver.solve(&b);
        eprintln!(
            "[zoo adaptive {family}/small] it={} res={:.3e} · {}",
            out.iterations,
            out.relative_residual,
            solver.chain().quality().summary()
        );
        assert!(
            out.converged && out.relative_residual <= TOLERANCE,
            "{family}/small with adaptive selection: not converged \
             (it={} res={:.3e})",
            out.iterations,
            out.relative_residual
        );
    }
}
