//! Deep preconditioner chain tests: the KMP10 tree-scaling + partial
//! Cholesky + W-cycle pipeline must produce chains of depth ≥ 3 that
//! converge, do no more work than the old depth-2 configuration, and stay
//! bitwise reproducible across pool widths (DESIGN.md §2.1, §3.1).
//!
//! The `#[ignore]`d test is the release-mode "deep-chain" CI job's
//! workload (200×200 grid ≈ 40k vertices); run it with
//! `cargo test --release --test deep_chain -- --ignored --nocapture`.

use proptest::prelude::*;

use parsdd_graph::generators;
use parsdd_graph::parutil::with_threads;
use parsdd_solver::chain::{build_chain, ChainOptions, ChainStats, SolverChain};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

fn rhs(n: usize) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n).map(|i| ((i * 37) % 23) as f64 - 11.0).collect();
    parsdd_linalg::vector::project_out_constant(&mut b);
    b
}

/// The pre-tree-scaling configuration: two levels, unscaled forests (what
/// `ChainOptions::default()` was before the deep-chain work).
fn depth2_options() -> ChainOptions {
    ChainOptions {
        max_levels: 2,
        tree_scale: 1.0,
        min_shrink: 1.5,
        ..Default::default()
    }
}

fn print_chain(tag: &str, chain: &SolverChain, stats: &ChainStats) {
    eprintln!(
        "[{tag}] depth={} vertices={:?} edges={:?} k={:?} κ_eff={:?} t={:?} work/app={:.3e} (bottom {:.3e}, dense={})",
        chain.depth(),
        stats.level_vertices,
        stats.level_edges,
        stats.inner_iterations,
        stats
            .kappa_eff
            .iter()
            .map(|k| (k * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        stats.tree_scales,
        stats.work_per_application,
        stats.level_work.last().copied().unwrap_or(0.0),
        stats.direct_bottom,
    );
}

/// Debug-friendly scale: a 120×120 grid already recurses to depth ≥ 3
/// under the default options and converges.
#[test]
fn default_options_reach_depth_3_on_midsize_grid() {
    let g = generators::grid2d(120, 120, |_, _| 1.0);
    let chain = build_chain(&g, &ChainOptions::default());
    let stats = chain.stats();
    print_chain("120x120", &chain, &stats);
    assert!(
        chain.depth() >= 3,
        "expected depth ≥ 3, got {} (levels {:?})",
        chain.depth(),
        stats.level_vertices
    );
    let b = rhs(g.n());
    let out = chain.solve(&b, 1e-8, 300);
    assert!(
        out.converged,
        "deep chain diverged: rel={} iters={}",
        out.relative_residual, out.iterations
    );
}

/// The release-mode CI workload (acceptance criteria of the deep-chain
/// refactor): on a 200×200 grid the chain reaches depth ≥ 3, converges,
/// spends no more total solve work (per the `ChainStats` model) than the
/// depth-2 configuration, and solves bitwise identically at 1 and 4
/// threads.
#[test]
#[ignore = "release-mode deep-chain CI job (multi-second workload)"]
fn large_grid_deep_chain_beats_depth2_and_is_width_independent() {
    let g = generators::grid2d(200, 200, |_, _| 1.0);
    let b = rhs(g.n());

    // Deep (default) configuration.
    let deep = build_chain(&g, &ChainOptions::default());
    let deep_stats = deep.stats();
    print_chain("deep", &deep, &deep_stats);
    assert!(
        deep.depth() >= 3,
        "expected depth ≥ 3, got {} (levels {:?})",
        deep.depth(),
        deep_stats.level_vertices
    );
    let deep_out = deep.solve(&b, 1e-8, 300);
    eprintln!(
        "[deep] iters={} rel={:.3e}",
        deep_out.iterations, deep_out.relative_residual
    );
    assert!(
        deep_out.converged,
        "deep chain diverged: rel={}",
        deep_out.relative_residual
    );

    // Depth-2 (old default) configuration.
    let shallow = build_chain(&g, &depth2_options());
    let shallow_stats = shallow.stats();
    print_chain("depth2", &shallow, &shallow_stats);
    let shallow_out = shallow.solve(&b, 1e-8, 300);
    eprintln!(
        "[depth2] iters={} rel={:.3e}",
        shallow_out.iterations, shallow_out.relative_residual
    );

    // Work comparison under the ChainStats model: outer iterations × flops
    // per preconditioner application.
    let deep_work = deep_out.iterations as f64 * deep_stats.work_per_application;
    let shallow_work = shallow_out.iterations as f64 * shallow_stats.work_per_application;
    eprintln!("[work] deep={deep_work:.3e} depth2={shallow_work:.3e}");
    assert!(
        deep_work <= shallow_work,
        "deep chain must not do more solve work: deep={deep_work:.3e} depth2={shallow_work:.3e}"
    );

    // Bitwise width-independence at depth ≥ 3: a fixed-work solve through
    // the whole deep pipeline produces identical bits at 1 and 4 threads.
    let options = SddSolverOptions {
        tolerance: 0.0,
        max_iterations: 4,
        ..SddSolverOptions::default()
    };
    let run = |threads: usize| {
        with_threads(threads, || {
            let solver = SddSolver::new_laplacian(&g, options);
            assert!(
                solver.chain().depth() >= 3,
                "determinism run must exercise a deep chain"
            );
            solver.solve(&b)
        })
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(
        seq.relative_residual.to_bits(),
        par.relative_residual.to_bits(),
        "residual differs between 1 and 4 threads: {} vs {}",
        seq.relative_residual,
        par.relative_residual
    );
    for (i, (a, b)) in seq.x.iter().zip(&par.x).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "solution component {i} differs between 1 and 4 threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Deep chains and the depth-2 configuration agree on the solution of
    /// random weighted graphs (both solve the same SPD system to a tight
    /// tolerance, so their answers must coincide to well within the
    /// conditioning slack).
    #[test]
    fn deep_chain_matches_depth2_solution(n in 300usize..600, extra in 2usize..4, seed in 0u64..500) {
        let g = generators::weighted_random_graph(n, extra * n, 1.0, 8.0, seed);
        let b = rhs(g.n());
        let deep = build_chain(&g, &ChainOptions { bottom_size: 60, ..Default::default() });
        let shallow = build_chain(&g, &ChainOptions { bottom_size: 60, ..depth2_options() });
        let out_deep = deep.solve(&b, 1e-10, 400);
        let out_shallow = shallow.solve(&b, 1e-10, 400);
        prop_assert!(out_deep.converged, "deep rel {}", out_deep.relative_residual);
        prop_assert!(out_shallow.converged, "depth2 rel {}", out_shallow.relative_residual);
        let diff: f64 = out_deep
            .x
            .iter()
            .zip(&out_shallow.x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm = parsdd_linalg::vector::norm2(&out_shallow.x).max(1e-300);
        prop_assert!(
            diff / norm <= 1e-3,
            "solutions diverge: rel diff {} (deep depth {}, shallow depth {})",
            diff / norm,
            deep.depth(),
            shallow.depth()
        );
    }
}
