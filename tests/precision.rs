//! Conformance contracts of the mixed-precision chain tier
//! (`ChainOptions::precision = F32`, DESIGN.md §2.7).
//!
//! The f32 tier trades streamed bytes, not answers or reproducibility:
//!
//! 1. f32 chains converge to the same 1e-8 outer tolerance as f64 across
//!    the zoo small tiers, with iteration counts inside a pinned ≤1.5×
//!    envelope — the flexible outer PCG absorbs the approximate
//!    preconditioner.
//! 2. The f32 path is itself bitwise-reproducible across pool widths
//!    {1, 2, 4} — every kernel (f64-accumulating or all-f32) uses a
//!    fixed width-independent reduction tree — and batched solves match
//!    looped single solves bitwise.
//! 3. The f64 default is bitwise-identical with the knob absent and with
//!    it explicitly set to `F64` — the determinism-pinned path gains no
//!    new behavior.
//! 4. The residency claim is measured: both tiers drop their per-level
//!    CSR graphs after calibration, so each demoted f32 level holds
//!    ≤ 0.72× the matrix-stream bytes of its f64 counterpart (level 0
//!    stays f64 on both tiers and is byte-identical).

use parsdd_bench::zoo::{self, Tier};
use parsdd_graph::parutil::with_threads;
use parsdd_solver::chain::{build_chain, ChainOptions, Precision};

const TOLERANCE: f64 = 1e-8;

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed.wrapping_add(13)) % 29) as f64) - 14.0)
        .collect();
    let mean = b.iter().sum::<f64>() / n as f64;
    b.iter_mut().for_each(|v| *v -= mean);
    b
}

/// Zoo small tiers: the f32 chain reaches the same 1e-8 tolerance with an
/// iteration count within 1.5× of the f64 chain's, and each demoted chain
/// level holds at most 0.72× the resident bytes (level 0 stays f64 on
/// both tiers, so it is byte-identical).
#[test]
fn f32_zoo_small_converges_within_iteration_envelope() {
    for &family in zoo::FAMILIES {
        let g = zoo::build(family, Tier::Small);
        let opts = zoo::chain_options(family, Tier::Small);
        let f64_run = zoo::run(&g, opts.with_precision(Precision::F64), TOLERANCE);
        let f32_run = zoo::run(&g, opts.with_precision(Precision::F32), TOLERANCE);
        eprintln!(
            "[precision {family}/small] f64 it={} f32 it={} res={:.3e}",
            f64_run.iterations, f32_run.iterations, f32_run.relative_residual
        );
        assert!(
            f32_run.converged && f32_run.relative_residual <= TOLERANCE,
            "{family}: f32 chain did not converge (it={} res={:.3e})",
            f32_run.iterations,
            f32_run.relative_residual
        );
        assert!(
            f32_run.iterations as f64 <= 1.5 * f64_run.iterations.max(1) as f64,
            "{family}: f32 took {} iterations vs f64's {} — outside the 1.5× envelope",
            f32_run.iterations,
            f64_run.iterations
        );
        // The residency acceptance bound, per chain level (the bottom
        // keeps its f64 matrix + graph for the iterative fallback and is
        // only required to shrink).
        let s64 = build_chain(&g, &opts.with_precision(Precision::F64)).stats();
        let s32 = build_chain(&g, &opts.with_precision(Precision::F32)).stats();
        let depth = s32.level_resident_bytes.len() - 1;
        if depth > 0 {
            assert_eq!(
                s32.level_resident_bytes[0], s64.level_resident_bytes[0],
                "{family}: level 0 stays f64 on both tiers"
            );
        }
        for i in 1..depth {
            assert!(
                s32.level_resident_bytes[i] as f64 <= 0.72 * s64.level_resident_bytes[i] as f64,
                "{family} level {i}: f32 resident {} vs f64 {}",
                s32.level_resident_bytes[i],
                s64.level_resident_bytes[i]
            );
        }
        if depth > 0 {
            assert!(
                s32.resident_bytes < s64.resident_bytes,
                "{family}: no total saving"
            );
            assert!(
                s32.streamed_bytes_per_application < s64.streamed_bytes_per_application,
                "{family}: no streamed-byte saving"
            );
        }
    }
}

/// Chain structure, calibration, and solve iterates of the f32 tier as
/// comparable bits.
fn f32_solve_bits(g: &parsdd_graph::Graph, b: &[f64]) -> Vec<u64> {
    let chain = build_chain(g, &ChainOptions::default().with_precision(Precision::F32));
    let mut fp = vec![chain.depth() as u64];
    for lvl in chain.levels() {
        fp.push(lvl.n() as u64);
        fp.push(lvl.m() as u64);
        fp.push(lvl.cheb_bounds.0.to_bits());
        fp.push(lvl.cheb_bounds.1.to_bits());
        fp.push(lvl.inner_iterations as u64);
    }
    let out = chain.solve(b, TOLERANCE, 300);
    fp.push(out.iterations as u64);
    fp.push(out.relative_residual.to_bits());
    fp.extend(out.x.iter().map(|v| v.to_bits()));
    fp
}

/// The f32 path holds the same width-independence contract as the f64
/// path: builds and solves are bitwise identical at pool widths 1, 2, 4.
#[test]
fn f32_chains_bitwise_identical_across_pool_widths() {
    let grid = parsdd_graph::generators::grid2d(40, 40, |x, y| 1.0 + ((x * 3 + y) % 5) as f64);
    let road = zoo::build("road", Tier::Small);
    for g in [&grid, &road] {
        let b = rhs(g.n(), 17);
        let base = with_threads(1, || f32_solve_bits(g, &b));
        for threads in [2usize, 4] {
            let fp = with_threads(threads, || f32_solve_bits(g, &b));
            assert_eq!(base, fp, "f32 solve differs at pool width {threads}");
        }
    }
}

/// Batched f32 solves are bitwise identical to looped single solves —
/// the block kernels' per-column arithmetic is width-invariant in the
/// f32 tier exactly as in the f64 tier.
#[test]
fn f32_batched_solves_match_looped_bitwise() {
    use parsdd_linalg::MultiVector;
    let g = parsdd_graph::generators::grid2d(36, 36, |_, _| 1.0);
    let chain = build_chain(&g, &ChainOptions::default().with_precision(Precision::F32));
    let cols: Vec<Vec<f64>> = (0..4).map(|s| rhs(g.n(), 31 + s as u64)).collect();
    let batched = chain.solve_block(&MultiVector::from_columns(&cols), TOLERANCE, 300);
    for (j, b) in cols.iter().enumerate() {
        let single = chain.solve(b, TOLERANCE, 300);
        assert_eq!(batched[j].iterations, single.iterations, "column {j}");
        assert_eq!(
            batched[j].relative_residual.to_bits(),
            single.relative_residual.to_bits(),
            "column {j}"
        );
        for (a, s) in batched[j].x.iter().zip(&single.x) {
            assert_eq!(a.to_bits(), s.to_bits(), "column {j} solution");
        }
    }
}

/// The committed f64 behavior is unchanged by the knob's existence: a
/// default build and an explicit `F64` build produce bitwise-identical
/// structure and solves, and every level drops its build-time CSR after
/// calibration (the streamed matrices are the only resident state).
#[test]
fn f64_default_unchanged_with_knob_absent_or_explicit() {
    let g = zoo::build("rmat", Tier::Small);
    let b = rhs(g.n(), 3);
    let implicit = build_chain(&g, &ChainOptions::default());
    let explicit = build_chain(&g, &ChainOptions::default().with_precision(Precision::F64));
    assert_eq!(implicit.stats().level_edges, explicit.stats().level_edges);
    assert_eq!(implicit.stats().kappa_eff, explicit.stats().kappa_eff);
    assert_eq!(
        implicit.stats().level_resident_bytes,
        explicit.stats().level_resident_bytes
    );
    let xa = implicit.solve(&b, TOLERANCE, 300);
    let xb = explicit.solve(&b, TOLERANCE, 300);
    assert_eq!(xa.iterations, xb.iterations);
    for (u, v) in xa.x.iter().zip(&xb.x) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
    for lvl in implicit.levels() {
        assert!(
            lvl.graph().is_none(),
            "level CSRs are dropped after calibration"
        );
        assert_eq!(lvl.storage_precision(), Precision::F64);
    }
}
