//! Fault-injection harness: every fault in the deterministic plan must
//! surface as a typed error or a tolerance-meeting recovery — never a
//! panic, never a silently wrong answer.
//!
//! The injection machinery lives in `parsdd_bench::faults`; this harness
//! drives each fault kind through the solver's fallible front door (or,
//! for preconditioner faults, through the linalg drivers the facade is
//! built on) and asserts the robustness contract of DESIGN.md §2.5.

use parsdd_bench::faults::{self, Fault, FaultPlan};
use parsdd_graph::{generators, Graph, GraphDataError};
use parsdd_linalg::breakdown::BreakdownReason;
use parsdd_linalg::cg::{pcg_solve, CgOptions};
use parsdd_linalg::laplacian::LaplacianOp;
use parsdd_linalg::operator::LinearOperator;
use parsdd_linalg::vector::{norm2, project_out_constant, sub};
use parsdd_solver::chain::{build_chain, ChainOptions, ChainPreconditioner};
use parsdd_solver::error::{BuildError, RecoveryRung, SolveError};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};

/// The barbell (near-disconnected clusters) zoo family at its small tier:
/// the hardest committed workload, and the one whose feeble bridges make
/// every fault bite.
fn barbell() -> Graph {
    generators::near_disconnected_clusters(3, 150, 300, 1e-3, 0x2005)
}

fn balanced_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed.wrapping_add(11))) % 23) as f64 - 11.0)
        .collect();
    project_out_constant(&mut b);
    b
}

/// Every fault of the standard plan surfaces as a typed error or a
/// converged recovery — exhaustive over the plan, deterministic per seed.
#[test]
fn every_planned_fault_is_classified_or_recovered() {
    let g = barbell();
    let plan = FaultPlan::standard(0xfau64, g.n(), g.m());
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
    let b = balanced_rhs(g.n(), 3);

    for fault in &plan.faults {
        match *fault {
            Fault::NanRhs { index } => {
                let bad = faults::poison_rhs(&b, index, f64::NAN);
                match solver.try_solve(&bad) {
                    Err(SolveError::NonFiniteRhs {
                        column: 0,
                        index: i,
                    }) => {
                        assert_eq!(i, index, "wrong poisoned index reported")
                    }
                    other => panic!("NaN rhs misclassified: {other:?}"),
                }
            }
            Fault::InfRhs { index } => {
                let bad = faults::poison_rhs(&b, index, f64::INFINITY);
                assert!(matches!(
                    solver.try_solve(&bad),
                    Err(SolveError::NonFiniteRhs { column: 0, .. })
                ));
            }
            Fault::CorruptWeight { edge, weight } => {
                let bad = faults::corrupt_weight(&g, edge, weight);
                match SddSolver::try_new_laplacian(&bad, SddSolverOptions::default()) {
                    Err(BuildError::InvalidGraph(
                        GraphDataError::NonFiniteWeight { edge: e, .. }
                        | GraphDataError::NonPositiveWeight { edge: e, .. },
                    )) => assert_eq!(e, edge, "wrong corrupted edge reported"),
                    other => panic!(
                        "corrupt weight {weight} misclassified: {:?}",
                        other.err().map(|e| e.to_string())
                    ),
                }
            }
            Fault::DropWeakestEdges { count } => {
                // Dropping the feeble bridges disconnects the graph. The
                // build must still succeed (disconnected Laplacians are
                // legal), but the old globally-balanced rhs now has
                // nonzero sums on the new components → typed rejection.
                let cut = faults::drop_weakest_edges(&g, count);
                let cut_solver = SddSolver::try_new_laplacian(&cut, SddSolverOptions::default())
                    .expect("disconnected graphs are legal systems");
                match cut_solver.try_solve(&b) {
                    Err(SolveError::SingularSystem { .. }) => {}
                    Ok(out) => {
                        // If the rhs happens to stay balanced per
                        // component, the answer must actually be right.
                        let op = LaplacianOp::new(&cut);
                        let r = sub(&b, &op.apply_vec(&out.x));
                        assert!(out.converged);
                        assert!(norm2(&r) <= 1e-6 * norm2(&b));
                    }
                    other => panic!("dropped bridges misclassified: {other:?}"),
                }
            }
            Fault::PerturbWeights { relative, seed } => {
                // Chain built from a perturbed twin of the graph, used to
                // precondition the *original* system: flexible PCG must
                // still converge (the perturbed chain is spectrally close)
                // and the answer must be right — never silently wrong.
                let perturbed = faults::perturb_weights(&g, relative, seed);
                let chain = build_chain(&perturbed, &ChainOptions::default());
                let pre = ChainPreconditioner::new(&chain);
                let op = LaplacianOp::new(&g);
                let out = pcg_solve(
                    &op,
                    &pre,
                    &b,
                    &CgOptions {
                        max_iters: 400,
                        tol: 1e-8,
                    },
                );
                assert!(
                    out.converged,
                    "perturbed preconditioner should still converge: rel {} breakdown {:?}",
                    out.relative_residual, out.breakdown
                );
                let r = sub(&b, &op.apply_vec(&out.x));
                assert!(norm2(&r) <= 1e-6 * norm2(&b), "silent wrong answer");
            }
            Fault::PoisonPreconditioner { application } => {
                // NaN injected mid-iteration: the driver must freeze with
                // a typed non-finite breakdown instead of spinning its
                // whole budget on NaN arithmetic.
                let chain = build_chain(&g, &ChainOptions::default());
                let inner = ChainPreconditioner::new(&chain);
                let pre = faults::PoisonedPreconditioner::new(&inner, application);
                let op = LaplacianOp::new(&g);
                let out = pcg_solve(
                    &op,
                    &pre,
                    &b,
                    &CgOptions {
                        max_iters: 400,
                        tol: 1e-8,
                    },
                );
                assert!(!out.converged);
                assert!(
                    matches!(
                        out.breakdown,
                        Some(
                            BreakdownReason::NonFiniteResidual { .. }
                                | BreakdownReason::IndefiniteDirection { .. }
                        )
                    ),
                    "poisoned preconditioner not classified: {:?}",
                    out.breakdown
                );
                assert!(
                    out.iterations <= application + 3,
                    "spun {} iterations past the poison at application {}",
                    out.iterations,
                    application
                );
            }
        }
    }
}

/// The recovery ladder end-to-end on the barbell family: a starved outer
/// budget fails the plain solve, the fallible front door escalates
/// deterministically, records the trace, and returns a converged answer.
#[test]
fn recovery_ladder_end_to_end_on_barbell() {
    let g = barbell();
    let opts = SddSolverOptions {
        max_iterations: 1,
        ..Default::default()
    };
    let solver = SddSolver::new_laplacian(&g, opts);
    let b = balanced_rhs(g.n(), 17);

    let plain = solver.solve(&b);
    assert!(!plain.converged, "budget must be insufficient for the test");

    let out = solver.try_solve(&b).expect("ladder must rescue");
    assert!(out.converged);
    let rungs: Vec<RecoveryRung> = out.recovery.iter().map(|s| s.rung).collect();
    assert!(!rungs.is_empty(), "escalation must be recorded");
    // Ladder determinism contract: rungs escalate in the fixed order
    // refresh → stronger chain → direct factor, without repeats.
    let expected = [
        RecoveryRung::IterateRefresh,
        RecoveryRung::StrongerChain,
        RecoveryRung::DirectFactor,
    ];
    assert_eq!(rungs.as_slice(), &expected[..rungs.len()]);
    assert!(
        out.recovery.last().expect("non-empty").converged,
        "last recorded rung is the one that met tolerance: {:?}",
        out.recovery
    );
    // Verify the answer, independently of the solver's own residual.
    let op = LaplacianOp::new(&g);
    let r = sub(&b, &op.apply_vec(&out.x));
    assert!(norm2(&r) <= 1e-6 * norm2(&b));

    // Replay: the same call escalates through the same rungs.
    let again = solver.try_solve(&b).expect("deterministic rescue");
    let rungs2: Vec<RecoveryRung> = again.recovery.iter().map(|s| s.rung).collect();
    assert_eq!(rungs, rungs2);
}

/// The recovery ladder escalates a mixed-precision chain to full
/// precision: a starved f32-chain solve is rescued, the stronger/direct
/// rungs rebuild in f64 regardless of the knob, and the answer checks
/// out against an independent operator.
#[test]
fn f32_chain_breakdown_escalates_to_f64_rungs() {
    use parsdd_solver::chain::Precision;
    let g = barbell();
    let mut opts = SddSolverOptions {
        max_iterations: 1,
        ..Default::default()
    };
    opts.chain = ChainOptions::default().with_precision(Precision::F32);
    let solver = SddSolver::new_laplacian(&g, opts);
    assert_eq!(solver.chain().options().precision, Precision::F32);
    let b = balanced_rhs(g.n(), 29);

    let plain = solver.solve(&b);
    assert!(!plain.converged, "budget must be insufficient for the test");

    let out = solver.try_solve(&b).expect("ladder must rescue f32 chains");
    assert!(out.converged);
    assert!(
        !out.recovery.is_empty(),
        "escalation from the f32 chain must be recorded"
    );
    // Whatever rung rescued it, the answer must be genuinely right.
    let op = LaplacianOp::new(&g);
    let r = sub(&b, &op.apply_vec(&out.x));
    assert!(norm2(&r) <= 1e-6 * norm2(&b));
}

/// A solver whose system was built from corrupted data must fail at
/// *build* time for every corruption the plan generates, regardless of
/// where in the edge list the corruption lands.
#[test]
fn corrupted_builds_fail_closed_across_seeds() {
    let g = generators::grid2d(12, 12, |_, _| 1.0);
    for seed in 0..8u64 {
        let plan = FaultPlan::standard(seed, g.n(), g.m());
        for fault in &plan.faults {
            if let Fault::CorruptWeight { edge, weight } = *fault {
                let bad = faults::corrupt_weight(&g, edge, weight);
                assert!(
                    SddSolver::try_new_laplacian(&bad, SddSolverOptions::default()).is_err(),
                    "seed {seed}: corruption at edge {edge} (w={weight}) not caught"
                );
            }
        }
    }
}

/// Gremban front door: a matrix with a non-finite entry or a
/// non-dominant row is rejected with a typed error, not a panic.
#[test]
fn sdd_matrix_faults_are_typed() {
    use parsdd_linalg::csr::CsrMatrix;
    let nan_mat = CsrMatrix::from_triplets(
        2,
        2,
        &[(0, 0, 2.0), (0, 1, f64::NAN), (1, 0, f64::NAN), (1, 1, 2.0)],
    );
    assert!(matches!(
        SddSolver::try_new_sdd(&nan_mat, SddSolverOptions::default()),
        Err(BuildError::InvalidMatrix(_))
    ));
    let not_sdd = CsrMatrix::from_triplets(
        2,
        2,
        &[(0, 0, 1.0), (0, 1, -5.0), (1, 0, -5.0), (1, 1, 1.0)],
    );
    assert!(matches!(
        SddSolver::try_new_sdd(&not_sdd, SddSolverOptions::default()),
        Err(BuildError::InvalidMatrix(_))
    ));
}
