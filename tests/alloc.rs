//! Steady-state allocation accounting for the solver hot paths.
//!
//! The per-chain scratch arena (DESIGN.md §2.6) exists so that applying
//! the preconditioner — the operation the W-cycle repeats thousands of
//! times per solve — touches the heap **zero** times once its buffers are
//! warm. That claim is enforced here with a counting global allocator:
//!
//! 1. after one warm-up application, further `precondition_block_rm`
//!    calls perform no allocation at all (widths 1 and 4), and
//! 2. a longer outer solve allocates exactly as much as a shorter one —
//!    i.e. the per-iteration allocation count of `solve` is zero (the
//!    remaining allocations are per-solve boundary work).
//!
//! Both tests run the 64×64 grid (n = 4096) at pool width 1: every level
//! sits below the parallel-dispatch cutoffs, so the whole application
//! takes the sequential kernel paths the zero-allocation contract covers
//! (the parallel dispatch paths collect per-chunk partials by design).
//!
//! The counter is thread-local, so the harness running other tests on
//! sibling threads cannot perturb the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use parsdd_graph::parutil::with_threads;
use parsdd_solver::chain::{build_chain, ChainOptions, Precision};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations (and growth reallocations) observed on this thread.
fn allocs_here() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn grid_rhs(n: usize) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
    let mean = b.iter().sum::<f64>() / n as f64;
    b.iter_mut().for_each(|v| *v -= mean);
    b
}

/// Zero heap allocations per preconditioner application once warm, at
/// block widths 1 and 4 — in both storage precisions (the f32 tier's
/// `p32` direction scratch lives in the same `ChainWorkspace` arena, so
/// demoted chains make no per-application heap traffic either).
#[test]
fn preconditioner_application_is_allocation_free_when_warm() {
    with_threads(1, || {
        let g = parsdd_graph::generators::grid2d(64, 64, |x, y| 1.0 + ((x * 3 + y) % 5) as f64);
        for precision in [Precision::F64, Precision::F32] {
            let chain = build_chain(&g, &ChainOptions::default().with_precision(precision));
            let n = g.n();
            for k in [1usize, 4] {
                let br: Vec<f64> = (0..n * k).map(|i| ((i % 19) as f64) - 9.0).collect();
                let mut out = Vec::new();
                // Warm-up: the first application grows every arena buffer to
                // its steady-state size (sizes are deterministic per level).
                chain.precondition_block_rm(&br, k, &mut out);
                chain.precondition_block_rm(&br, k, &mut out);
                let before = allocs_here();
                for _ in 0..5 {
                    chain.precondition_block_rm(&br, k, &mut out);
                }
                let grew = allocs_here() - before;
                assert_eq!(
                    grew, 0,
                    "width-{k} {precision:?} preconditioner application allocated \
                     {grew} times in steady state"
                );
            }
        }
    });
}

/// The outer solve's allocation count does not depend on the iteration
/// count: everything the PCG loop needs lives in reused buffers, so a
/// 25-iteration solve allocates exactly as much as a 10-iteration one.
/// (Counts stay below `STALL_WINDOW` so neither run trips stall exit;
/// tolerance 0 pins the iteration counts exactly.)
#[test]
fn solve_allocations_are_iteration_count_independent() {
    with_threads(1, || {
        let g = parsdd_graph::generators::grid2d(64, 64, |x, y| 1.0 + ((x * 3 + y) % 5) as f64);
        for precision in [Precision::F64, Precision::F32] {
            let chain = build_chain(&g, &ChainOptions::default().with_precision(precision));
            let b = grid_rhs(g.n());
            // Warm the workspace pool and the outer-solve buffers.
            let _ = chain.solve(&b, 0.0, 5);

            let measure = |iters: usize| {
                let before = allocs_here();
                let outcome = chain.solve(&b, 0.0, iters);
                assert_eq!(outcome.iterations, iters);
                allocs_here() - before
            };
            let short = measure(10);
            let long = measure(25);
            assert_eq!(
                short, long,
                "{precision:?} solve allocates per iteration: {short} allocations \
                 at 10 iterations vs {long} at 25"
            );
        }
    });
}
