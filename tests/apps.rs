//! Application-layer integration tests for the blocked multi-RHS solve
//! path: `solve_many` must agree **bitwise** with looped single solves at
//! every pool width, per-column convergence must be tracked honestly, and
//! the batched applications (effective resistances, harmonic
//! interpolation, electrical flows) must reproduce their looped
//! behaviour on real workloads.

use parsdd_apps::electrical::{conservation_violation, electrical_flow, electrical_flows};
use parsdd_apps::harmonic::{harmonic_interpolation, harmonic_interpolation_many};
use parsdd_apps::resistance::{approximate_effective_resistances, exact_effective_resistances};
use parsdd_graph::generators;
use parsdd_graph::parutil::with_threads;
use parsdd_linalg::vector::{norm2, project_out_constant};
use parsdd_solver::sdd_solve::{SddSolver, SddSolverOptions};
use std::collections::HashMap;

fn rhs_set(n: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|s| {
            let mut b: Vec<f64> = (0..n)
                .map(|i| (((i * (2 * s + 3)) % 23) as f64) - 11.0)
                .collect();
            project_out_constant(&mut b);
            b
        })
        .collect()
}

#[test]
fn solve_many_matches_looped_solve_bitwise_across_widths() {
    let g = generators::grid2d(28, 28, |_, _| 1.0);
    let bs = rhs_set(g.n(), 5);
    // (batched, looped) under a given pool width.
    let run = |threads: usize| {
        with_threads(threads, || {
            let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
            let batched = solver.solve_many(&bs);
            let looped: Vec<_> = bs.iter().map(|b| solver.solve(b)).collect();
            (batched, looped)
        })
    };
    let (batched_1, looped_1) = run(1);
    let (batched_4, looped_4) = run(4);
    for j in 0..bs.len() {
        assert!(looped_1[j].converged, "column {j} did not converge");
        // Batched ≡ looped at each width...
        for (batched, looped) in [(&batched_1, &looped_1), (&batched_4, &looped_4)] {
            assert_eq!(batched[j].iterations, looped[j].iterations, "column {j}");
            assert_eq!(batched[j].converged, looped[j].converged, "column {j}");
            assert_eq!(
                batched[j].relative_residual.to_bits(),
                looped[j].relative_residual.to_bits(),
                "column {j} residual"
            );
            for (a, b) in batched[j].x.iter().zip(&looped[j].x) {
                assert_eq!(a.to_bits(), b.to_bits(), "column {j} solution");
            }
        }
        // ... and 1-thread ≡ 4-thread bitwise (the runtime's
        // width-independent split trees carry over to blocks).
        for (a, b) in batched_1[j].x.iter().zip(&batched_4[j].x) {
            assert_eq!(a.to_bits(), b.to_bits(), "column {j} across widths");
        }
    }
}

#[test]
fn permuted_and_identity_orderings_agree() {
    use parsdd_solver::chain::{ChainOptions, LevelOrdering};
    // The bandwidth-reduced (RCM) chain and the identity-ordered chain are
    // different preconditioners for the *same* system: both must converge,
    // and their solutions must agree to the solve tolerance (they both
    // approximate the unique mean-zero solution).
    let g = generators::grid2d(32, 32, |x, y| 1.0 + ((x + 3 * y) % 4) as f64);
    let bs = rhs_set(g.n(), 2);
    let tol = 1e-10;
    let solve_with = |ordering: LevelOrdering| {
        let opts = SddSolverOptions::default()
            .with_tolerance(tol)
            .with_chain(ChainOptions::default().with_ordering(ordering));
        let solver = SddSolver::new_laplacian(&g, opts);
        solver.solve_many(&bs)
    };
    let rcm = solve_with(LevelOrdering::BandwidthReducing);
    let id = solve_with(LevelOrdering::Identity);
    for (j, b) in bs.iter().enumerate() {
        assert!(rcm[j].converged, "rcm column {j}");
        assert!(id[j].converged, "identity column {j}");
        let scale = norm2(b);
        let diff: f64 = rcm[j]
            .x
            .iter()
            .zip(&id[j].x)
            .map(|(a, c)| (a - c) * (a - c))
            .sum::<f64>()
            .sqrt();
        // Both solutions are within tol·κ-ish of the exact one; 1e-6
        // relative is a comfortably tight bound at tol = 1e-10.
        assert!(
            diff <= 1e-6 * scale.max(1.0),
            "orderings disagree on column {j}: |Δx| = {diff:.3e}"
        );
    }
}

#[test]
fn fused_permuted_path_bitwise_identical_at_widths_1_2_4() {
    // The PR 5 kernels (merged-row SpMV, fused Chebyshev sweeps, fused
    // apply+dot, envelope bottom) must keep the pool-width-independence
    // contract: identical bits at 1, 2 and 4 threads, batched and looped.
    let g = generators::grid2d(30, 30, |_, _| 1.0);
    let bs = rhs_set(g.n(), 3);
    let run = |threads: usize| {
        with_threads(threads, || {
            let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
            solver.solve_many(&bs)
        })
    };
    let w1 = run(1);
    let w2 = run(2);
    let w4 = run(4);
    for j in 0..bs.len() {
        assert!(w1[j].converged, "column {j}");
        for (tag, other) in [("2", &w2), ("4", &w4)] {
            assert_eq!(w1[j].iterations, other[j].iterations, "column {j} @{tag}t");
            assert_eq!(
                w1[j].relative_residual.to_bits(),
                other[j].relative_residual.to_bits(),
                "column {j} residual @{tag}t"
            );
            for (a, b) in w1[j].x.iter().zip(&other[j].x) {
                assert_eq!(a.to_bits(), b.to_bits(), "column {j} solution @{tag}t");
            }
        }
    }
}

#[test]
fn per_column_convergence_flags_honored() {
    let g = generators::grid2d(24, 24, |_, _| 1.0);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default());
    let mut bs = rhs_set(g.n(), 2);
    // A zero column converges instantly; a hard column does not — the
    // outcome of each must reflect its own trajectory, not the block's.
    bs.insert(1, vec![0.0; g.n()]);
    let outs = solver.solve_many(&bs);
    assert!(outs[1].converged);
    assert_eq!(outs[1].iterations, 0);
    assert_eq!(outs[1].relative_residual, 0.0);
    assert!(outs[1].x.iter().all(|&v| v == 0.0));
    for j in [0usize, 2] {
        assert!(outs[j].converged, "column {j}");
        assert!(outs[j].iterations > 0, "column {j}");
        assert!(outs[j].relative_residual <= 1e-8, "column {j}");
    }
    // An unreachable tolerance must be reported per column, not papered
    // over by the block.
    let strict = solver.solve_many_with_tolerance(&bs[..1], 1e-30);
    assert!(!strict[0].converged);
    assert!(strict[0].relative_residual > 1e-30);
}

#[test]
fn exact_and_approximate_resistances_agree_on_grid() {
    let g = generators::grid2d(7, 7, |_, _| 1.0);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-10));
    let exact = exact_effective_resistances(&g, &solver);
    let approx = approximate_effective_resistances(&g, &solver, 200, 11);
    assert_eq!(exact.len(), g.m());
    for (i, (a, e)) in approx.iter().zip(&exact).enumerate() {
        assert!(
            (a - e).abs() <= 0.3 * e + 1e-6,
            "edge {i}: approx {a} vs exact {e}"
        );
    }
    // Foster's theorem pins the exact values globally: Σ w_e R_e = n − 1.
    let total: f64 = exact.iter().zip(g.edges()).map(|(r, e)| r * e.w).sum();
    assert!(
        (total - (g.n() as f64 - 1.0)).abs() < 1e-5,
        "Foster {total}"
    );
}

#[test]
fn approximate_resistances_bitwise_reproducible_across_widths() {
    let g = generators::grid2d(10, 10, |_, _| 1.0);
    let run = |threads: usize| {
        with_threads(threads, || {
            let solver =
                SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-10));
            approximate_effective_resistances(&g, &solver, 24, 5)
        })
    };
    let a = run(1);
    let b = run(4);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "edge {i} differs across widths");
    }
}

#[test]
fn harmonic_batch_on_grid_respects_dirichlet_data() {
    let g = generators::grid2d(12, 12, |_, _| 1.0);
    // Two Dirichlet problems over the same boundary set (left and right
    // columns), batched through one grounded system.
    let mut left_right = HashMap::new();
    let mut gradient = HashMap::new();
    for r in 0..12u32 {
        left_right.insert(r * 12, 0.0);
        left_right.insert(r * 12 + 11, 1.0);
        gradient.insert(r * 12, r as f64);
        gradient.insert(r * 12 + 11, 11.0 - r as f64);
    }
    let batched = harmonic_interpolation_many(
        &g,
        &[left_right.clone(), gradient.clone()],
        SddSolverOptions::default(),
    );
    for res in &batched {
        assert!(res.converged);
        assert!(res.max_mean_value_violation < 1e-5);
    }
    // Maximum principle per problem.
    for (v, &x) in batched[0].values.iter().enumerate() {
        if !left_right.contains_key(&(v as u32)) {
            assert!((-1e-9..=1.0 + 1e-9).contains(&x), "vertex {v}: {x}");
        }
    }
    // The batch matches the single-problem path bitwise.
    for (boundary, res) in [left_right, gradient].iter().zip(&batched) {
        let single = harmonic_interpolation(&g, boundary, SddSolverOptions::default());
        for (a, b) in res.values.iter().zip(&single.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn electrical_flow_batch_on_grid_conserves_current() {
    let g = generators::grid2d(11, 11, |_, _| 1.0);
    let solver = SddSolver::new_laplacian(&g, SddSolverOptions::default().with_tolerance(1e-10));
    let pairs = [(0u32, 120u32), (10, 110), (0, 10)];
    let flows = electrical_flows(&g, &solver, &pairs);
    for (&(s, t), f) in pairs.iter().zip(&flows) {
        assert!(f.converged);
        assert!(conservation_violation(&g, f, s, t) < 1e-6);
        assert!((f.energy - f.effective_resistance).abs() < 1e-6);
        let single = electrical_flow(&g, &solver, s, t);
        assert_eq!(
            single.effective_resistance.to_bits(),
            f.effective_resistance.to_bits()
        );
    }
    // Symmetric terminals on a symmetric grid: equal resistances.
    let corner = flows[0].effective_resistance;
    assert!(corner > 0.0 && corner.is_finite());
    let b = norm2(&flows[0].potentials);
    assert!(b.is_finite());
}
