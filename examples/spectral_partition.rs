//! Spectral partitioning with the solver: Fiedler vectors by inverse power
//! iteration, spectral bisection, and effective-resistance sparsification.
//!
//! Run with:
//! ```text
//! cargo run --release --example spectral_partition
//! ```

use parsdd::prelude::*;
use parsdd_apps::resistance::approximate_effective_resistances;
use parsdd_apps::sparsifier::spectral_sparsify;
use parsdd_apps::spectral::{cut_conductance, fiedler_vector, spectral_bisection};
use parsdd_linalg::power::quadratic_form_ratio_bounds;

fn main() {
    // A "two communities" graph: two dense random blocks joined by a few
    // bridges — the canonical spectral-partitioning input.
    let block = 300usize;
    let mut builder = GraphBuilder::new(2 * block);
    let g1 = parsdd::graph::generators::erdos_renyi_gnm(block, 2400, 1);
    let g2 = parsdd::graph::generators::erdos_renyi_gnm(block, 2400, 2);
    for e in g1.edges() {
        builder.add_edge(e.u, e.v, 1.0);
    }
    for e in g2.edges() {
        builder.add_edge(e.u + block as u32, e.v + block as u32, 1.0);
    }
    for i in 0..6u32 {
        builder.add_edge(
            i * 37 % block as u32,
            block as u32 + (i * 53 % block as u32),
            1.0,
        );
    }
    let graph = builder.build();
    println!(
        "Two-community graph: {} vertices, {} edges, 6 bridge edges",
        graph.n(),
        graph.m()
    );

    let solver = SddSolver::new_laplacian(&graph, SddSolverOptions::default().with_tolerance(1e-9));

    // --- Fiedler vector and bisection ----------------------------------------
    let t0 = std::time::Instant::now();
    let fiedler = fiedler_vector(&graph, &solver, 40, 3);
    let (side, conductance) = spectral_bisection(&graph, &fiedler);
    let community_a_in_s = side.iter().take(block).filter(|&&s| s).count();
    let community_b_in_s = side.iter().skip(block).filter(|&&s| s).count();
    println!(
        "\n== Spectral bisection (Fiedler vector via {} solves) ==",
        fiedler.iterations
    );
    println!("  time                  : {:.2?}", t0.elapsed());
    println!("  lambda_2 estimate     : {:.5}", fiedler.lambda2);
    println!("  cut conductance       : {:.5}", conductance);
    println!(
        "  community split       : side S holds {community_a_in_s}/{block} of A and {community_b_in_s}/{block} of B"
    );
    println!(
        "  (a perfect split keeps one community on each side; random would be ~50/50 of both)"
    );

    // --- Effective resistances and sparsification -----------------------------
    println!("\n== Spectral sparsification by effective resistances [SS08] ==");
    let t1 = std::time::Instant::now();
    let reff = approximate_effective_resistances(&graph, &solver, 40, 9);
    let bridges_high_reff = graph
        .edges()
        .iter()
        .zip(&reff)
        .filter(|(e, &r)| {
            let cross = (e.u as usize) < block && (e.v as usize) >= block
                || (e.v as usize) < block && (e.u as usize) >= block;
            cross && r > 0.2
        })
        .count();
    println!(
        "  resistance estimation : {:.2?} (40 projections)",
        t1.elapsed()
    );
    println!("  bridge edges with R_eff > 0.2: {bridges_high_reff} / 6 (bridges are spectrally critical)");

    let sp = spectral_sparsify(&graph, &solver, 15 * graph.n(), 40, 17);
    let (lo, hi) = quadratic_form_ratio_bounds(&graph, &sp.graph, 30, 23);
    println!(
        "  sparsifier            : {} -> {} edges, quadratic-form ratio in [{:.2}, {:.2}]",
        graph.m(),
        sp.distinct_edges,
        lo,
        hi
    );
    let sparsified_cut = cut_conductance(&sp.graph, &side);
    println!(
        "  conductance of the spectral cut in the sparsifier: {:.5} (vs {:.5} in the original)",
        sparsified_cut, conductance
    );
}
