//! Quickstart: build a grid Laplacian, construct the parallel solver chain
//! once, and solve a couple of right-hand sides.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use parsdd::prelude::*;
use parsdd_linalg::laplacian::LaplacianOp;
use parsdd_linalg::operator::LinearOperator;
use parsdd_linalg::vector::{norm2, project_out_constant};

fn main() {
    // A 120 x 120 grid — the discrete Poisson problem that motivates SDD
    // solvers in vision/graphics applications. (Large enough that the
    // preconditioner chain matters, small enough that the demo finishes in
    // seconds; scaling behaviour is measured by the E8/E9 benches.)
    let rows = 120;
    let cols = 120;
    println!("Building a {rows}x{cols} grid Laplacian ...");
    let graph = parsdd::graph::generators::grid2d(rows, cols, |_, _| 1.0);
    println!("  n = {} vertices, m = {} edges", graph.n(), graph.m());

    // Build the preconditioner chain (Theorem 1.1 solver). This is the
    // expensive, reusable part.
    let t0 = std::time::Instant::now();
    let options = SddSolverOptions::default().with_tolerance(1e-8);
    let solver = SddSolver::new_laplacian(&graph, options);
    println!(
        "Built a {}-level preconditioner chain in {:.2?}",
        solver.chain().depth(),
        t0.elapsed()
    );
    let stats = solver.stats();
    println!("  level sizes (vertices): {:?}", stats.level_vertices);
    println!("  level sizes (edges):    {:?}", stats.level_edges);
    println!(
        "  direct bottom solve:    {} (envelope nnz {})",
        stats.direct_bottom, stats.bottom_envelope_nnz
    );

    // Solve a few right-hand sides, reusing the chain.
    for (name, rhs) in [
        ("dipole (corner source/sink)", {
            let mut b = vec![0.0; graph.n()];
            b[0] = 1.0;
            b[graph.n() - 1] = -1.0;
            b
        }),
        ("smooth charge distribution", {
            let mut b: Vec<f64> = (0..graph.n())
                .map(|i| ((i / cols) as f64 * 0.21).sin() * ((i % cols) as f64 * 0.13).cos())
                .collect();
            project_out_constant(&mut b);
            b
        }),
    ] {
        let t1 = std::time::Instant::now();
        let out = solver.solve(&rhs);
        let op = LaplacianOp::new(&graph);
        let res = op.residual(&out.x, &rhs);
        println!(
            "Solved '{name}' in {:.2?}: {} outer iterations, relative residual {:.2e} (true {:.2e})",
            t1.elapsed(),
            out.iterations,
            out.relative_residual,
            norm2(&res) / norm2(&rhs),
        );
    }
}
