//! Low-diameter decomposition and low-stretch structures demo.
//!
//! Shows the two graph-theoretic contributions of the paper on their own:
//! Section 4's `Partition` (low-diameter decomposition with few cut edges)
//! and Section 5's AKPW spanning tree / ultra-sparse low-stretch subgraph.
//!
//! Run with:
//! ```text
//! cargo run --release --example decomposition
//! ```

use parsdd::prelude::*;
use parsdd_decomp::partition::partition_single_class;
use parsdd_decomp::stats::decomposition_stats;
use parsdd_graph::mst::kruskal;
use parsdd_lsst::stretch::{stretch_over_subgraph_sampled, stretch_over_tree};

fn main() {
    // A weighted grid with large spread so several weight classes exist.
    let base = parsdd::graph::generators::grid2d(120, 120, |_, _| 1.0);
    let graph = parsdd::graph::generators::with_power_law_weights(&base, 6, 42);
    println!(
        "Input: {} vertices, {} edges, weight spread {:.1e}",
        graph.n(),
        graph.m(),
        graph.spread()
    );

    // --- Section 4: low-diameter decomposition ------------------------------
    println!("\n== Low-diameter decomposition (Partition, Theorem 4.1) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "rho", "components", "max radius", "cut fraction"
    );
    for rho in [8u32, 16, 32, 64] {
        let result = partition_single_class(&graph, &PartitionParams::new(rho).with_seed(7));
        let stats = decomposition_stats(&graph, &result.split, false);
        println!(
            "{rho:>6} {:>12} {:>12} {:>14.4}",
            stats.components, stats.max_radius, stats.cut_fraction
        );
    }

    // --- Section 5.1: AKPW low-stretch spanning tree -------------------------
    println!("\n== Low-stretch spanning trees (AKPW, Theorem 5.1) ==");
    let mst = kruskal(&graph);
    let mst_stretch = stretch_over_tree(&graph, &mst);
    println!(
        "MST baseline        : avg stretch {:>8.2}, max {:>10.1}",
        mst_stretch.average_stretch, mst_stretch.max_stretch
    );
    let tree = akpw(&graph, &AkpwParams::practical(32.0).with_seed(7));
    let akpw_stretch = stretch_over_tree(&graph, &tree.tree_edges);
    println!(
        "AKPW (z = 32)       : avg stretch {:>8.2}, max {:>10.1}, {} iterations",
        akpw_stretch.average_stretch, akpw_stretch.max_stretch, tree.iterations
    );

    // --- Section 5.2: low-stretch ultra-sparse subgraph ----------------------
    println!("\n== Low-stretch subgraphs (LSSubgraph, Theorem 5.9) ==");
    for (z, lambda) in [(32.0, 1u32), (32.0, 2), (16.0, 2)] {
        let sub = ls_subgraph(&graph, &LsSubgraphParams::practical(z, lambda).with_seed(7));
        let edges = sub.all_edges();
        let extra = edges.len() as isize - (graph.n() as isize - 1);
        let report = stretch_over_subgraph_sampled(&graph, &edges, 400, 11);
        println!(
            "z = {z:>4}, lambda = {lambda}: {} edges ({extra:+} vs spanning tree), sampled avg stretch {:.2}",
            edges.len(),
            report.average_stretch
        );
    }
}
