//! Electrical flows and approximate max-flow (the [CKM+10] application).
//!
//! Computes a unit electrical flow on a capacitated grid, then runs the
//! multiplicative-weights approximate max-flow and compares against the
//! exact augmenting-path answer.
//!
//! Run with:
//! ```text
//! cargo run --release --example electrical_maxflow
//! ```

use parsdd::prelude::*;
use parsdd_apps::electrical::{conservation_violation, electrical_flow};
use parsdd_apps::maxflow::{approx_max_flow, exact_max_flow};

fn main() {
    // A capacitated grid: capacities grow toward the centre, so the flow
    // prefers the middle of the grid.
    let rows = 30;
    let cols = 30;
    let graph = parsdd::graph::generators::grid2d(rows, cols, |u, v| {
        let centre = |x: u32| {
            let r = (x as usize / cols) as f64 - rows as f64 / 2.0;
            let c = (x as usize % cols) as f64 - cols as f64 / 2.0;
            (r * r + c * c).sqrt()
        };
        1.0 + 4.0 / (1.0 + 0.1 * (centre(u) + centre(v)))
    });
    let s = 0u32;
    let t = (graph.n() - 1) as u32;
    println!(
        "Capacitated {}x{} grid: {} vertices, {} edges",
        rows,
        cols,
        graph.n(),
        graph.m()
    );

    // --- Electrical flow (one SDD solve) -------------------------------------
    let solver =
        SddSolver::new_laplacian(&graph, SddSolverOptions::default().with_tolerance(1e-10));
    let t0 = std::time::Instant::now();
    let flow = electrical_flow(&graph, &solver, s, t);
    println!("\n== Electrical flow (unit current from corner to corner) ==");
    println!("  solve time              : {:.2?}", t0.elapsed());
    println!(
        "  effective resistance    : {:.4}",
        flow.effective_resistance
    );
    println!("  flow energy             : {:.4}", flow.energy);
    println!(
        "  conservation violation  : {:.2e}",
        conservation_violation(&graph, &flow, s, t)
    );

    // --- Approximate max-flow -------------------------------------------------
    println!("\n== Approximate max-flow (multiplicative weights over electrical flows) ==");
    let t1 = std::time::Instant::now();
    let exact = exact_max_flow(&graph, s, t);
    println!(
        "  exact max-flow (Edmonds–Karp)  : {exact:.3} ({:.2?})",
        t1.elapsed()
    );
    for eps in [0.3, 0.15] {
        let t2 = std::time::Instant::now();
        let approx = approx_max_flow(&graph, s, t, eps, 8);
        println!(
            "  approx flow (eps = {eps:>4}): {:.3} = {:.1}% of exact, {} electrical flows, {:.2?}",
            approx.flow_value,
            100.0 * approx.flow_value / exact,
            approx.iterations,
            t2.elapsed()
        );
    }
}
